//! Append-only event journal with deterministic replay.
//!
//! Every flushed request is recorded together with its (netted) cost
//! outcome. The text encoding extends the `realloc_core::textio` framing
//! — one event per line, `#` comments ignored — with a config header so
//! a journal is self-contained:
//!
//! ```text
//! # realloc-engine journal v1
//! c 4 1 theorem1:8          # shards, machines/shard, backend
//! b 0                       # batch boundary
//! + 0 17 4 12 ok 1 0        # shard 0: insert j17 [4,12) → 1 realloc
//! - 2 9 err capacity        # shard 2: delete j9 rejected
//! ```
//!
//! [`Journal::replay`] rebuilds a fresh engine from the header, feeds the
//! recorded requests through it batch by batch, and verifies that every
//! outcome matches the recording — the determinism check behind crash
//! recovery and shard migration (replaying a shard's stream reproduces
//! its exact state).

use crate::backend::BackendKind;
use crate::{Engine, EngineConfig};
use realloc_core::textio::ParseError;
use realloc_core::{Error, JobId, Request, Window};

/// Netted per-request costs, as recorded in the journal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Costs {
    /// Paper §2 reallocation cost of the request.
    pub reallocations: u64,
    /// Paper §2 migration cost of the request.
    pub migrations: u64,
}

/// Stable error codes (scheduler error *details* are free-form strings
/// and not replay-comparable; the code is).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// Insert reused an active id.
    Duplicate,
    /// Delete of an inactive job.
    Unknown,
    /// Unaligned window hit an aligned-only backend.
    Unaligned,
    /// No capacity (underallocation precondition violated).
    Capacity,
    /// Request shape unsupported by the backend.
    Unsupported,
}

impl ErrCode {
    /// Classifies a scheduler error.
    pub fn of(e: &Error) -> ErrCode {
        match e {
            Error::DuplicateJob(_) => ErrCode::Duplicate,
            Error::UnknownJob(_) => ErrCode::Unknown,
            Error::UnalignedWindow(_) => ErrCode::Unaligned,
            Error::CapacityExhausted { .. } => ErrCode::Capacity,
            Error::UnsupportedJob { .. } => ErrCode::Unsupported,
        }
    }

    fn as_str(&self) -> &'static str {
        match self {
            ErrCode::Duplicate => "duplicate",
            ErrCode::Unknown => "unknown",
            ErrCode::Unaligned => "unaligned",
            ErrCode::Capacity => "capacity",
            ErrCode::Unsupported => "unsupported",
        }
    }

    fn parse(s: &str) -> Option<ErrCode> {
        Some(match s {
            "duplicate" => ErrCode::Duplicate,
            "unknown" => ErrCode::Unknown,
            "unaligned" => ErrCode::Unaligned,
            "capacity" => ErrCode::Capacity,
            "unsupported" => ErrCode::Unsupported,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Outcome of one journaled request.
pub type ReqResult = Result<Costs, ErrCode>;

/// One journaled request with its routing and outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalEvent {
    /// Flush number the request was serviced in.
    pub batch: u64,
    /// Shard that serviced it.
    pub shard: usize,
    /// The request itself (internal, tenant-resolved job id).
    pub request: Request,
    /// What happened.
    pub result: ReqResult,
}

/// Where a replay first diverged from the recording.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// Index into [`Journal::events`].
    pub index: usize,
    /// The recorded event.
    pub recorded: JournalEvent,
    /// What the replay produced instead (`None`: replay produced no
    /// event at this position).
    pub replayed: Option<JournalEvent>,
}

impl std::fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay diverged at event {}: recorded {:?}, replayed {:?}",
            self.index, self.recorded, self.replayed
        )
    }
}

/// Append-only engine event log.
#[derive(Clone, Debug)]
pub struct Journal {
    config: EngineConfig,
    events: Vec<JournalEvent>,
}

impl Journal {
    /// Empty journal for an engine with `config`.
    pub fn new(config: EngineConfig) -> Self {
        Journal {
            config,
            events: Vec::new(),
        }
    }

    /// The engine configuration the journal was recorded under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// All recorded events, in service order.
    pub fn events(&self) -> &[JournalEvent] {
        &self.events
    }

    /// Appends one event (called by the engine during flush).
    pub fn append(&mut self, event: JournalEvent) {
        self.events.push(event);
    }

    /// Serializes to the line format (see module docs).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.events.len() * 24 + 64);
        out.push_str("# realloc-engine journal v1\n");
        writeln!(
            out,
            "c {} {} {}",
            self.config.shards, self.config.machines_per_shard, self.config.backend
        )
        .unwrap();
        let mut batch = None;
        for e in &self.events {
            if batch != Some(e.batch) {
                writeln!(out, "b {}", e.batch).unwrap();
                batch = Some(e.batch);
            }
            match e.request {
                Request::Insert { id, window } => write!(
                    out,
                    "+ {} {} {} {}",
                    e.shard,
                    id.0,
                    window.start(),
                    window.end()
                )
                .unwrap(),
                Request::Delete { id } => write!(out, "- {} {}", e.shard, id.0).unwrap(),
            }
            match e.result {
                Ok(c) => writeln!(out, " ok {} {}", c.reallocations, c.migrations).unwrap(),
                Err(code) => writeln!(out, " err {code}").unwrap(),
            }
        }
        out
    }

    /// Parses the line format back into a journal.
    pub fn from_text(text: &str) -> Result<Journal, ParseError> {
        let mut config: Option<EngineConfig> = None;
        let mut events = Vec::new();
        let mut batch = 0u64;
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let err = |message: String| ParseError { line, message };
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut parts = content.split_whitespace();
            let op = parts.next().expect("non-empty line has a token");
            let num = |tok: Option<&str>, what: &str| -> Result<u64, ParseError> {
                tok.ok_or_else(|| err(format!("missing {what}")))?
                    .parse::<u64>()
                    .map_err(|e| err(format!("bad {what}: {e}")))
            };
            match op {
                "c" => {
                    let shards = num(parts.next(), "shards")? as usize;
                    let machines = num(parts.next(), "machines")? as usize;
                    let backend_raw = parts
                        .next()
                        .ok_or_else(|| err("missing backend".to_string()))?;
                    let backend = BackendKind::parse(backend_raw).map_err(&err)?;
                    config = Some(EngineConfig {
                        shards,
                        machines_per_shard: machines,
                        backend,
                        ..EngineConfig::default()
                    });
                }
                "b" => batch = num(parts.next(), "batch")?,
                "+" | "-" => {
                    let shard = num(parts.next(), "shard")? as usize;
                    let id = JobId(num(parts.next(), "id")?);
                    let request = if op == "+" {
                        let start = num(parts.next(), "arrival")?;
                        let end = num(parts.next(), "deadline")?;
                        if end <= start {
                            return Err(err(format!("deadline {end} must exceed arrival {start}")));
                        }
                        Request::Insert {
                            id,
                            window: Window::new(start, end),
                        }
                    } else {
                        Request::Delete { id }
                    };
                    let tag = parts
                        .next()
                        .ok_or_else(|| err("missing outcome".to_string()))?;
                    let result = match tag {
                        "ok" => Ok(Costs {
                            reallocations: num(parts.next(), "reallocations")?,
                            migrations: num(parts.next(), "migrations")?,
                        }),
                        "err" => {
                            let code_raw = parts
                                .next()
                                .ok_or_else(|| err("missing error code".to_string()))?;
                            Err(ErrCode::parse(code_raw)
                                .ok_or_else(|| err(format!("bad error code '{code_raw}'")))?)
                        }
                        other => return Err(err(format!("bad outcome tag '{other}'"))),
                    };
                    events.push(JournalEvent {
                        batch,
                        shard,
                        request,
                        result,
                    });
                }
                other => return Err(err(format!("unknown op '{other}'"))),
            }
            if let Some(extra) = parts.next() {
                return Err(ParseError {
                    line,
                    message: format!("unexpected trailing token '{extra}'"),
                });
            }
        }
        let config = config.ok_or(ParseError {
            line: 0,
            message: "journal has no 'c' config header".to_string(),
        })?;
        Ok(Journal { config, events })
    }

    /// Replays the journal against a fresh engine and verifies every
    /// recorded routing decision and outcome. Returns the engine (for
    /// state recovery) on success, the first divergence otherwise.
    pub fn replay(&self) -> Result<Engine, Box<ReplayDivergence>> {
        let mut cfg = self.config.clone();
        cfg.journal = true;
        let mut engine = Engine::new(cfg);
        let mut idx = 0usize;
        while idx < self.events.len() {
            let batch = self.events[idx].batch;
            let mut end = idx;
            while end < self.events.len() && self.events[end].batch == batch {
                engine.submit(self.events[end].request);
                end += 1;
            }
            engine.flush();
            let replayed = engine.journal().expect("journal enabled").events();
            for i in idx..end {
                let got = replayed.get(i).copied();
                // Batch numbering restarts from 0 in the fresh engine;
                // compare everything else exactly.
                let matches = got.is_some_and(|g| {
                    g.shard == self.events[i].shard
                        && g.request == self.events[i].request
                        && g.result == self.events[i].result
                });
                if !matches {
                    return Err(Box::new(ReplayDivergence {
                        index: i,
                        recorded: self.events[i],
                        replayed: got,
                    }));
                }
            }
            idx = end;
        }
        Ok(engine)
    }
}
