//! Segmented event journal with checkpoint records, **epoch records**,
//! and O(tail) recovery.
//!
//! Every flushed request is recorded together with its (netted) cost
//! outcome. The text encoding extends the `realloc_core::textio` framing
//! — one record per line, `#` comments ignored — with a config header,
//! **checkpoint records**, **epoch records**, and an optional truncation
//! marker (v3 framing):
//!
//! ```text
//! # realloc-engine journal v3
//! c 4 1 theorem1:8 4        # GENESIS shards, machines/shard, backend,
//! T 2 13107                 #   retention; 2 truncated segments precede
//! s 40 13107 6812           # checkpoint: 40 batches, 13107 events before,
//! # realloc snapshot v1     #   followed by 6812 verbatim snapshot lines
//! !begin engine
//! …
//! !end
//! b 40                      # batch boundary
//! + 0 17 4 12 ok 1 0        # shard 0: insert j17 [4,12) → 1 realloc
//! - 2 9 err capacity        # shard 2: delete j9 rejected
//! E 1 6 7 5                 # epoch record: epoch 1, resize to 6 shards,
//! b 41                      #   tenant 7 pinned to shard 5
//! + 5 17 4 12 ok 0 0
//! ```
//!
//! # Versioning
//!
//! * **v1** — events only (one genesis segment, no checkpoints).
//! * **v2** — adds the retention cap to the `c` header, checkpoint
//!   records (`s` + embedded engine snapshot), and the `T` truncation
//!   marker.
//! * **v3** — adds **epoch records** (`E <epoch> <shards> [<tenant>
//!   <shard>]…`): an elastic resize/rebalance appends one at its exact
//!   position in the event stream, carrying the complete new routing
//!   table. The `c` header's shard count becomes the *genesis* count;
//!   the current count after replaying is whatever the last applied
//!   epoch record (or checkpoint) says.
//!
//! The framing is self-describing, so every parser version accepts every
//! earlier version's output: v1/v2 journals are exactly v3 journals that
//! happen to contain no epoch records. Epoch records are validated at
//! parse time — strictly increasing epochs (a duplicate or regressing
//! epoch is corruption), at least one shard, a well-formed pin table,
//! and never in the middle of a batch (the engine only reshards between
//! flushes) — each violation a graceful [`ParseError`], never a panic.
//!
//! # Segments and checkpoints
//!
//! The journal is a sequence of *segments*. A segment starts either at
//! genesis or at a checkpoint — a full [`crate::Engine`] snapshot
//! (`realloc_core::snapshot` framing) taken between flushes by
//! [`crate::Engine::checkpoint`] — and holds the events recorded until
//! the next checkpoint seals it. Because a checkpoint makes every older
//! segment redundant for recovery, sealed segments beyond
//! [`crate::EngineConfig::retained_segments`] are dropped, which bounds
//! the journal's memory instead of growing without bound from genesis.
//!
//! # Replay vs. recovery
//!
//! * [`Journal::replay`] — the audit path: rebuilds an engine from the
//!   *earliest retained* state (genesis, or the oldest retained
//!   checkpoint after truncation) and re-services every retained event,
//!   verifying each recorded routing decision and outcome.
//! * [`Journal::recover_engine`] / [`crate::Engine::recover`] — the
//!   crash-recovery path: restores the *latest* checkpoint and replays
//!   only the tail, making recovery O(tail) instead of O(history) while
//!   preserving the same divergence detection on the events it replays.
//!
//! Shard migration falls out of the same machinery: snapshot, ship,
//! restore — no genesis replay.

use crate::backend::BackendKind;
use crate::{Engine, EngineConfig};
use realloc_core::router::Router;
use realloc_core::snapshot::SNAPSHOT_HEADER;
use realloc_core::textio::ParseError;
use realloc_core::{Error, JobId, Request, Window};
use std::collections::VecDeque;

/// Netted per-request costs, as recorded in the journal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Costs {
    /// Paper §2 reallocation cost of the request.
    pub reallocations: u64,
    /// Paper §2 migration cost of the request.
    pub migrations: u64,
}

/// Stable error codes (scheduler error *details* are free-form strings
/// and not replay-comparable; the code is).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// Insert reused an active id.
    Duplicate,
    /// Delete of an inactive job.
    Unknown,
    /// Unaligned window hit an aligned-only backend.
    Unaligned,
    /// No capacity (underallocation precondition violated).
    Capacity,
    /// Request shape unsupported by the backend.
    Unsupported,
}

impl ErrCode {
    /// Classifies a scheduler error.
    pub fn of(e: &Error) -> ErrCode {
        match e {
            Error::DuplicateJob(_) => ErrCode::Duplicate,
            Error::UnknownJob(_) => ErrCode::Unknown,
            Error::UnalignedWindow(_) => ErrCode::Unaligned,
            Error::CapacityExhausted { .. } => ErrCode::Capacity,
            Error::UnsupportedJob { .. } => ErrCode::Unsupported,
        }
    }

    /// The stable wire token of this code (`Display` uses it; journal
    /// and replication-frame encodings share it).
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrCode::Duplicate => "duplicate",
            ErrCode::Unknown => "unknown",
            ErrCode::Unaligned => "unaligned",
            ErrCode::Capacity => "capacity",
            ErrCode::Unsupported => "unsupported",
        }
    }

    /// Parses a wire token produced by [`ErrCode::as_str`].
    pub fn parse(s: &str) -> Option<ErrCode> {
        Some(match s {
            "duplicate" => ErrCode::Duplicate,
            "unknown" => ErrCode::Unknown,
            "unaligned" => ErrCode::Unaligned,
            "capacity" => ErrCode::Capacity,
            "unsupported" => ErrCode::Unsupported,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Outcome of one journaled request.
pub type ReqResult = Result<Costs, ErrCode>;

/// One journaled request with its routing and outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalEvent {
    /// Flush number the request was serviced in.
    pub batch: u64,
    /// Shard that serviced it.
    pub shard: usize,
    /// The request itself (internal, tenant-resolved job id).
    pub request: Request,
    /// What happened.
    pub result: ReqResult,
}

impl JournalEvent {
    /// Appends this event's v3 journal line (`+`/`-` op, no trailing
    /// `b` batch marker — that is the caller's framing concern) to
    /// `out`. [`Journal::to_text`] and the on-disk store share this
    /// encoder, so a store segment file's event lines parse with the
    /// same grammar as an in-memory journal dump.
    pub fn write_line(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self.request {
            Request::Insert { id, window } => write!(
                out,
                "+ {} {} {} {}",
                self.shard,
                id.0,
                window.start(),
                window.end()
            )
            .unwrap(),
            Request::Delete { id } => write!(out, "- {} {}", self.shard, id.0).unwrap(),
        }
        match self.result {
            Ok(c) => writeln!(out, " ok {} {}", c.reallocations, c.migrations).unwrap(),
            Err(code) => writeln!(out, " err {code}").unwrap(),
        }
    }
}

/// Where a replay first diverged from the recording.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// Index into [`Journal::events`] (retained events).
    pub index: usize,
    /// The recorded event.
    pub recorded: JournalEvent,
    /// What the replay produced instead (`None`: replay produced no
    /// event at this position).
    pub replayed: Option<JournalEvent>,
}

impl std::fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay diverged at event {}: recorded {:?}, replayed {:?}",
            self.index, self.recorded, self.replayed
        )
    }
}

/// Why a replay or recovery failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// A checkpoint snapshot failed to parse or validate.
    Corrupt(ParseError),
    /// Replay produced a different outcome than the recording.
    Divergence(Box<ReplayDivergence>),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Corrupt(e) => write!(f, "corrupt checkpoint snapshot: {e}"),
            ReplayError::Divergence(d) => d.fmt(f),
        }
    }
}

impl std::error::Error for ReplayError {}

/// An epoch record: the complete routing table adopted by one elastic
/// resize/rebalance, journaled at its exact position in the event stream
/// so replay re-applies the same resharding at the same point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochRecord {
    /// The routing epoch this record advances to.
    pub epoch: u64,
    /// Shard count of the new table.
    pub shards: usize,
    /// Tenant pins of the new table, ordered by tenant.
    pub pins: Vec<(u64, usize)>,
}

impl EpochRecord {
    /// Captures a router's table as a journal record.
    pub fn of(router: &Router) -> EpochRecord {
        EpochRecord {
            epoch: router.epoch(),
            shards: router.shards(),
            pins: router.pins().collect(),
        }
    }

    /// Appends this record's v3 journal line (`E <epoch> <shards>
    /// [<tenant> <shard>]…`) to `out`; shared by [`Journal::to_text`]
    /// and the on-disk store.
    pub fn write_line(&self, out: &mut String) {
        use std::fmt::Write as _;
        write!(out, "E {} {}", self.epoch, self.shards).unwrap();
        for &(tenant, shard) in &self.pins {
            write!(out, " {tenant} {shard}").unwrap();
        }
        out.push('\n');
    }
}

/// Position of an incremental reader in a journal's record stream (see
/// [`Journal::records_since`]). Events are counted in the since-genesis
/// sequence space ([`Journal::total_events`]), so checkpoint truncation
/// never renumbers a cursor; epochs are identified by their strictly
/// increasing epoch number. `JournalCursor::default()` is the genesis
/// position.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalCursor {
    /// Events consumed so far (since genesis).
    pub events_seen: u64,
    /// Highest epoch record consumed so far (`0`: none — recorded
    /// epochs are always `>= 1`).
    pub last_epoch: u64,
}

impl JournalCursor {
    /// The cursor covering everything `journal` currently holds — the
    /// starting position of a stream that must not re-ship history.
    pub fn at_end_of(journal: &Journal) -> JournalCursor {
        JournalCursor {
            events_seen: journal.total_events(),
            last_epoch: journal
                .segments
                .iter()
                .flat_map(|s| s.epochs.iter())
                .map(|(_, r)| r.epoch)
                .max()
                .unwrap_or(0),
        }
    }

    /// Advances past one consumed record.
    pub fn advance(&mut self, record: &JournalRecord<'_>) {
        match record {
            JournalRecord::Event(_) => self.events_seen += 1,
            JournalRecord::Epoch(r) => self.last_epoch = r.epoch,
        }
    }
}

/// One borrowed journal record, as yielded by [`Journal::records_since`]:
/// the journal's stream interleaves serviced events with the epoch
/// records of elastic reshards, in recording order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalRecord<'a> {
    /// A serviced request.
    Event(&'a JournalEvent),
    /// A routing-table change at this position.
    Epoch(&'a EpochRecord),
}

/// Borrowing iterator over a journal's records past a cursor; see
/// [`Journal::records_since`].
#[derive(Debug)]
pub struct Records<'a> {
    segments: std::collections::vec_deque::Iter<'a, Segment>,
    events: &'a [JournalEvent],
    epochs: &'a [(usize, EpochRecord)],
    ev_idx: usize,
    ep_idx: usize,
    /// Global (since-genesis) index of `events[ev_idx]`.
    next_global: u64,
    skip_events: u64,
    skip_epochs: u64,
}

impl<'a> Iterator for Records<'a> {
    type Item = JournalRecord<'a>;

    fn next(&mut self) -> Option<JournalRecord<'a>> {
        loop {
            // An epoch anchored at position `p` precedes event `p` (the
            // serialization in `Journal::to_text` uses the same rule).
            if self
                .epochs
                .get(self.ep_idx)
                .is_some_and(|&(pos, _)| pos <= self.ev_idx || self.ev_idx >= self.events.len())
            {
                let (_, rec) = &self.epochs[self.ep_idx];
                self.ep_idx += 1;
                if rec.epoch > self.skip_epochs {
                    return Some(JournalRecord::Epoch(rec));
                }
                continue;
            }
            if let Some(event) = self.events.get(self.ev_idx) {
                self.ev_idx += 1;
                let global = self.next_global;
                self.next_global += 1;
                if global >= self.skip_events {
                    return Some(JournalRecord::Event(event));
                }
                continue;
            }
            let seg = self.segments.next()?;
            self.events = &seg.events;
            self.epochs = &seg.epochs;
            self.ev_idx = 0;
            self.ep_idx = 0;
        }
    }
}

/// A checkpoint: a full engine snapshot anchoring the start of a
/// segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Completed flushes at the moment the snapshot was taken.
    pub batches: u64,
    /// Events recorded since genesis before this checkpoint (including
    /// events in segments that were since truncated).
    pub events_before: u64,
    /// The engine snapshot (`realloc_core::snapshot` v1 framing).
    pub snapshot: String,
}

/// One journal segment: an optional base checkpoint plus the events
/// recorded until the next checkpoint sealed it.
#[derive(Clone, Debug)]
struct Segment {
    /// The checkpoint this segment starts from; `None` for genesis.
    base: Option<Checkpoint>,
    events: Vec<JournalEvent>,
    /// Epoch records anchored at event offsets: `(pos, record)` means
    /// the table changed after `events[..pos]` and before `events[pos..]`
    /// (ascending `pos`, possibly `pos == events.len()` for a trailing
    /// record).
    epochs: Vec<(usize, EpochRecord)>,
}

impl Segment {
    fn empty(base: Option<Checkpoint>) -> Segment {
        Segment {
            base,
            events: Vec::new(),
            epochs: Vec::new(),
        }
    }
}

/// Segmented engine event log; see the module docs.
#[derive(Clone, Debug)]
pub struct Journal {
    config: EngineConfig,
    /// Retained segments, oldest first; the last one is open (receiving
    /// appends), all earlier ones are sealed.
    segments: VecDeque<Segment>,
    /// Sealed segments dropped by truncation.
    dropped_segments: u64,
    /// Events inside the dropped segments.
    dropped_events: u64,
}

impl Journal {
    /// Empty journal for an engine with `config`.
    pub fn new(config: EngineConfig) -> Self {
        let mut segments = VecDeque::new();
        segments.push_back(Segment::empty(None));
        Journal {
            config,
            segments,
            dropped_segments: 0,
            dropped_events: 0,
        }
    }

    /// The engine configuration the journal was recorded under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Re-anchors the retention cap (recovery: truncation must follow
    /// the restored engine's configuration). The rest of the config —
    /// notably the *genesis* shard count, which an elastic engine's
    /// current count can have drifted from — stays as recorded.
    pub(crate) fn set_retention(&mut self, retained_segments: usize) {
        self.config.retained_segments = retained_segments;
    }

    /// All retained events in service order (concatenated across
    /// segments). Events in truncated segments are gone — see
    /// [`Journal::dropped_events`].
    ///
    /// **Allocates a fresh `Vec` of the entire retained history on every
    /// call.** That is the right shape for whole-journal comparisons in
    /// tests, and wrong for everything else: telemetry and streaming
    /// must use the borrowing [`Journal::iter_events`], or the
    /// positioned [`Journal::records_since`] cursor, which walk the
    /// segments in place.
    #[deprecated(
        since = "0.1.0",
        note = "allocates the entire retained history per call; use the borrowing \
                `iter_events`, or `records_since` for positioned streaming"
    )]
    pub fn events(&self) -> Vec<JournalEvent> {
        self.iter_events().copied().collect()
    }

    /// Borrowing iterator over all retained events in service order —
    /// the allocation-free form of [`Journal::events`].
    pub fn iter_events(&self) -> impl Iterator<Item = &JournalEvent> + '_ {
        self.segments.iter().flat_map(|s| s.events.iter())
    }

    /// Events recorded since genesis, truncated segments included — the
    /// global sequence space [`Journal::records_since`] cursors count in.
    pub fn total_events(&self) -> u64 {
        self.dropped_events
            + self
                .segments
                .iter()
                .map(|s| s.events.len() as u64)
                .sum::<u64>()
    }

    /// Incremental cursor: every retained record — event or epoch — the
    /// journal holds *past* `cursor`, in recording order, borrowed (no
    /// re-serialization, no cloning). This is how the replication
    /// primary tails its own journal after each flush.
    ///
    /// Returns `None` when the cursor's position predates the retained
    /// history (checkpoint truncation dropped it) or lies beyond it (a
    /// cursor from some other journal): the caller must fall back to a
    /// snapshot bootstrap instead of silently skipping records.
    pub fn records_since(&self, cursor: JournalCursor) -> Option<Records<'_>> {
        if cursor.events_seen < self.dropped_events || cursor.events_seen > self.total_events() {
            return None;
        }
        let mut segments = self.segments.iter();
        let mut current = segments.next().expect("journal always has a segment");
        let mut next_global = self.dropped_events;
        // Hop whole segments the cursor has fully consumed (every event
        // behind it and no unconsumed epoch record — epochs strictly
        // increase, so checking the last one suffices). Without this a
        // cursor deep into a long segment history would re-skip every
        // consumed event on each call — O(history) per poll instead of
        // O(new records).
        loop {
            let seg_events = current.events.len() as u64;
            let behind = next_global + seg_events <= cursor.events_seen
                && current
                    .epochs
                    .last()
                    .is_none_or(|(_, r)| r.epoch <= cursor.last_epoch);
            if !behind {
                break;
            }
            let Some(next) = segments.next() else { break };
            next_global += seg_events;
            current = next;
        }
        // Arithmetic in-segment skip of consumed events; the per-record
        // guards in `Records::next` remain as the correctness backstop
        // (e.g. a segment pinned by an unconsumed trailing epoch).
        let consumed = cursor
            .events_seen
            .saturating_sub(next_global)
            .min(current.events.len() as u64);
        Some(Records {
            segments,
            events: &current.events,
            epochs: &current.epochs,
            ev_idx: consumed as usize,
            ep_idx: 0,
            next_global: next_global + consumed,
            skip_events: cursor.events_seen,
            skip_epochs: cursor.last_epoch,
        })
    }

    /// Retained events without concatenating (cheap).
    pub fn event_count(&self) -> usize {
        self.segments.iter().map(|s| s.events.len()).sum()
    }

    /// Events of the open (unsealed) segment — everything recorded since
    /// the latest checkpoint. Borrow-based so replay's per-batch
    /// verification stays allocation-free.
    pub fn tail_events(&self) -> &[JournalEvent] {
        &self
            .segments
            .back()
            .expect("journal always has an open segment")
            .events
    }

    /// Number of retained segments (sealed + the open tail).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Sealed segments dropped to honor the retention cap.
    pub fn dropped_segments(&self) -> u64 {
        self.dropped_segments
    }

    /// Events lost with the dropped segments (still counted in every
    /// checkpoint's `events_before`).
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// The latest checkpoint, when one exists.
    pub fn latest_checkpoint(&self) -> Option<&Checkpoint> {
        self.segments.iter().rev().find_map(|s| s.base.as_ref())
    }

    /// A [`JournalCursor`] positioned exactly at the latest checkpoint
    /// (`None` when no checkpoint exists): [`Journal::records_since`]
    /// from here yields precisely the records after the snapshot was
    /// cut. A recovered replication primary uses this to pre-stamp the
    /// post-checkpoint tail so bootstrap ships snapshot + tail instead
    /// of a fresh full snapshot.
    pub fn checkpoint_cursor(&self) -> Option<JournalCursor> {
        let latest = self.segments.iter().rposition(|s| s.base.is_some())?;
        let cp = self.segments[latest].base.as_ref().expect("rposition hit");
        // Epoch records recorded before the checkpoint live in earlier
        // segments; epochs strictly increase, so the max is the last
        // record of the last earlier segment holding one.
        let last_epoch = self
            .segments
            .iter()
            .take(latest)
            .flat_map(|s| s.epochs.iter())
            .map(|(_, r)| r.epoch)
            .max()
            .unwrap_or(0);
        Some(JournalCursor {
            events_seen: cp.events_before,
            last_epoch,
        })
    }

    /// Appends one event (called by the engine during flush).
    pub fn append(&mut self, event: JournalEvent) {
        self.segments
            .back_mut()
            .expect("journal always has an open segment")
            .events
            .push(event);
    }

    /// Appends an epoch record at the current position (called by the
    /// engine when a resize/rebalance adopts a new routing table).
    pub fn append_epoch(&mut self, record: EpochRecord) {
        let open = self
            .segments
            .back_mut()
            .expect("journal always has an open segment");
        let pos = open.events.len();
        open.epochs.push((pos, record));
    }

    /// Retained epoch records, in order (the resize history still
    /// covered by this journal; earlier epochs live inside checkpoint
    /// snapshots).
    pub fn epoch_records(&self) -> Vec<EpochRecord> {
        self.segments
            .iter()
            .flat_map(|s| s.epochs.iter().map(|(_, r)| r.clone()))
            .collect()
    }

    /// Seals the open segment and starts a new one anchored at the given
    /// engine snapshot, then drops sealed segments beyond the retention
    /// cap. Called by [`Engine::checkpoint`] between flushes.
    pub fn checkpoint(&mut self, snapshot: String, batches: u64) {
        let events_before = self.dropped_events
            + self
                .segments
                .iter()
                .map(|s| s.events.len() as u64)
                .sum::<u64>();
        self.segments.push_back(Segment::empty(Some(Checkpoint {
            batches,
            events_before,
            snapshot,
        })));
        // Truncate: keep at most `retained_segments` sealed segments.
        // Dropping from the front is always recovery-safe here: the
        // segment that becomes the new front was created by a checkpoint
        // (only the genesis segment has no base, and it is the first to
        // go).
        let cap = self.config.retained_segments;
        while self.segments.len() > cap.saturating_add(1) {
            debug_assert!(
                self.segments[1].base.is_some(),
                "every non-genesis segment starts at a checkpoint"
            );
            let seg = self.segments.pop_front().expect("len checked");
            self.dropped_segments += 1;
            self.dropped_events += seg.events.len() as u64;
        }
    }

    /// Serializes to the v3 line format (see module docs).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.event_count() * 24 + 64);
        out.push_str("# realloc-engine journal v3\n");
        // The header deliberately omits `parallel`: recordings are
        // execution-strategy agnostic (a pool-drained engine's journal
        // is byte-identical to a sequential one, and the property tests
        // pin that). `retained_segments` IS recorded — it governs the
        // journal's own truncation, so recovery must restore it even
        // when no checkpoint exists yet.
        writeln!(
            out,
            "c {} {} {} {}",
            self.config.shards,
            self.config.machines_per_shard,
            self.config.backend,
            self.config.retained_segments
        )
        .unwrap();
        if self.dropped_segments > 0 {
            writeln!(out, "T {} {}", self.dropped_segments, self.dropped_events).unwrap();
        }
        for seg in &self.segments {
            if let Some(cp) = &seg.base {
                let lines = cp.snapshot.lines().count();
                writeln!(out, "s {} {} {lines}", cp.batches, cp.events_before).unwrap();
                for line in cp.snapshot.lines() {
                    out.push_str(line);
                    out.push('\n');
                }
            }
            let mut batch = None;
            let mut epochs = seg.epochs.iter().peekable();
            for (idx, e) in seg.events.iter().enumerate() {
                while epochs.peek().is_some_and(|&&(pos, _)| pos <= idx) {
                    let (_, rec) = epochs.next().expect("peeked");
                    rec.write_line(&mut out);
                }
                if batch != Some(e.batch) {
                    writeln!(out, "b {}", e.batch).unwrap();
                    batch = Some(e.batch);
                }
                e.write_line(&mut out);
            }
            for (_, rec) in epochs {
                rec.write_line(&mut out);
            }
        }
        out
    }

    /// Parses the line format back into a journal. Accepts both v1
    /// journals (no checkpoints, one genesis segment) and v2 segmented
    /// journals; every malformed-input class — truncated checkpoint
    /// bodies, garbage ops, duplicate headers, invalid configs — yields
    /// a located [`ParseError`], never a panic.
    ///
    /// Note: *format* compatibility with v1 does not imply *replay*
    /// compatibility — replay re-services the stream with the current
    /// schedulers, and scheduler behavior can change across versions
    /// (e.g. this version's §3 migration victim is the smallest id on
    /// the tail machine, where older builds depended on hash iteration
    /// order). Replaying a recording made by an older build can
    /// legitimately report a divergence; divergence within one build is
    /// always real corruption or tampering.
    pub fn from_text(text: &str) -> Result<Journal, ParseError> {
        let mut config: Option<EngineConfig> = None;
        let mut dropped: Option<(u64, u64)> = None;
        let mut segments: VecDeque<Segment> = VecDeque::new();
        segments.push_back(Segment::empty(None));
        let mut batch = 0u64;
        // Epoch-record validation state: epochs must strictly increase
        // across the document, and a record may never split a batch (the
        // engine only reshards between flushes, so an in-batch record is
        // tampering). `barrier` holds the batch of the event immediately
        // preceding the latest epoch record; the next event must belong
        // to a different batch.
        let mut last_epoch: Option<u64> = None;
        let mut last_event_batch: Option<u64> = None;
        let mut barrier: Option<u64> = None;

        let mut lines = text.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let line = i + 1;
            let err = |message: String| ParseError { line, message };
            let content = realloc_core::textio::line_content(raw);
            if content.is_empty() {
                continue;
            }
            let mut parts = content.split_whitespace();
            let op = parts.next().expect("non-empty line has a token");
            let num = |tok: Option<&str>, what: &str| -> Result<u64, ParseError> {
                tok.ok_or_else(|| err(format!("missing {what}")))?
                    .parse::<u64>()
                    .map_err(|e| err(format!("bad {what}: {e}")))
            };
            match op {
                "c" => {
                    if config.is_some() {
                        return Err(err("duplicate 'c' config header".to_string()));
                    }
                    let shards = num(parts.next(), "shards")? as usize;
                    let machines = num(parts.next(), "machines")? as usize;
                    if shards == 0 {
                        return Err(err("config needs at least one shard".to_string()));
                    }
                    if machines == 0 {
                        return Err(err(
                            "config needs at least one machine per shard".to_string()
                        ));
                    }
                    let backend_raw = parts
                        .next()
                        .ok_or_else(|| err("missing backend".to_string()))?;
                    let backend = BackendKind::parse(backend_raw).map_err(&err)?;
                    // Optional (absent in v1 journals): retention cap.
                    let retained_segments = match parts.next() {
                        Some(tok) => tok
                            .parse::<usize>()
                            .map_err(|e| err(format!("bad retained-segments cap: {e}")))?,
                        None => EngineConfig::default().retained_segments,
                    };
                    config = Some(EngineConfig {
                        shards,
                        machines_per_shard: machines,
                        backend,
                        retained_segments,
                        ..EngineConfig::default()
                    });
                }
                "T" => {
                    if dropped.is_some() {
                        return Err(err("duplicate 'T' truncation marker".to_string()));
                    }
                    let segs = num(parts.next(), "dropped segments")?;
                    let events = num(parts.next(), "dropped events")?;
                    if segs == 0 {
                        return Err(err("'T' must name at least one dropped segment".to_string()));
                    }
                    dropped = Some((segs, events));
                }
                "s" => {
                    let batches = num(parts.next(), "checkpoint batches")?;
                    let events_before = num(parts.next(), "checkpoint events-before")?;
                    let nlines = num(parts.next(), "checkpoint line count")? as usize;
                    if let Some(extra) = parts.next() {
                        return Err(err(format!("unexpected trailing token '{extra}'")));
                    }
                    // Consume exactly `nlines` raw lines as the embedded
                    // snapshot (comments and blanks are part of it).
                    let mut snapshot = String::new();
                    for k in 0..nlines {
                        let Some((_, raw)) = lines.next() else {
                            return Err(err(format!(
                                "checkpoint truncated: {k} of {nlines} snapshot lines present"
                            )));
                        };
                        snapshot.push_str(raw);
                        snapshot.push('\n');
                    }
                    if !snapshot.starts_with(SNAPSHOT_HEADER) {
                        return Err(err(format!(
                            "checkpoint body does not start with '{SNAPSHOT_HEADER}'"
                        )));
                    }
                    segments.push_back(Segment::empty(Some(Checkpoint {
                        batches,
                        events_before,
                        snapshot,
                    })));
                    // A checkpoint implies a flush boundary; no batch can
                    // span it.
                    last_event_batch = None;
                    barrier = None;
                }
                "E" => {
                    let epoch = num(parts.next(), "epoch")?;
                    let shards = num(parts.next(), "epoch shard count")? as usize;
                    if let Some(prev) = last_epoch {
                        if epoch <= prev {
                            return Err(err(format!(
                                "epoch record {epoch} does not advance past epoch {prev} \
                                 (duplicate or regressing epoch)"
                            )));
                        }
                    }
                    let mut pins: Vec<(u64, usize)> = Vec::new();
                    while let Some(tenant_tok) = parts.next() {
                        let tenant = tenant_tok
                            .parse::<u64>()
                            .map_err(|e| err(format!("bad pinned tenant: {e}")))?;
                        let shard =
                            num(parts.next(), "pin shard (truncated router table)")? as usize;
                        if pins.iter().any(|&(t, _)| t == tenant) {
                            return Err(err(format!("tenant {tenant} pinned twice")));
                        }
                        pins.push((tenant, shard));
                    }
                    // Full table validation (shards >= 1, pins in range,
                    // at least one unpinned shard) via the router itself.
                    Router::from_parts(epoch, shards, pins.iter().copied())
                        .map_err(|e| err(format!("invalid epoch record: {e}")))?;
                    last_epoch = Some(epoch);
                    barrier = last_event_batch;
                    let open = segments.back_mut().expect("open segment");
                    let pos = open.events.len();
                    open.epochs.push((
                        pos,
                        EpochRecord {
                            epoch,
                            shards,
                            pins,
                        },
                    ));
                }
                "b" => batch = num(parts.next(), "batch")?,
                "+" | "-" => {
                    let shard = num(parts.next(), "shard")? as usize;
                    let id = JobId(num(parts.next(), "id")?);
                    let request = if op == "+" {
                        let start = num(parts.next(), "arrival")?;
                        let end = num(parts.next(), "deadline")?;
                        if end <= start {
                            return Err(err(format!("deadline {end} must exceed arrival {start}")));
                        }
                        Request::Insert {
                            id,
                            window: Window::new(start, end),
                        }
                    } else {
                        Request::Delete { id }
                    };
                    let tag = parts
                        .next()
                        .ok_or_else(|| err("missing outcome".to_string()))?;
                    let result = match tag {
                        "ok" => Ok(Costs {
                            reallocations: num(parts.next(), "reallocations")?,
                            migrations: num(parts.next(), "migrations")?,
                        }),
                        "err" => {
                            let code_raw = parts
                                .next()
                                .ok_or_else(|| err("missing error code".to_string()))?;
                            Err(ErrCode::parse(code_raw)
                                .ok_or_else(|| err(format!("bad error code '{code_raw}'")))?)
                        }
                        other => return Err(err(format!("bad outcome tag '{other}'"))),
                    };
                    if let Some(b) = barrier {
                        if b == batch {
                            return Err(err(format!(
                                "epoch record in the middle of batch {batch} \
                                 (reshards only happen between flushes)"
                            )));
                        }
                        barrier = None;
                    }
                    last_event_batch = Some(batch);
                    segments
                        .back_mut()
                        .expect("genesis segment")
                        .events
                        .push(JournalEvent {
                            batch,
                            shard,
                            request,
                            result,
                        });
                }
                other => return Err(err(format!("unknown op '{other}'"))),
            }
            if op != "s" {
                if let Some(extra) = parts.next() {
                    return Err(ParseError {
                        line,
                        message: format!("unexpected trailing token '{extra}'"),
                    });
                }
            }
        }
        let config = config.ok_or(ParseError {
            line: 0,
            message: "journal has no 'c' config header".to_string(),
        })?;
        let (dropped_segments, dropped_events) = dropped.unwrap_or((0, 0));
        if dropped_segments > 0 {
            // A truncated journal has no genesis: its first retained
            // segment must be a checkpoint, so the placeholder genesis
            // segment must have stayed empty.
            let genesis = &segments[0];
            if !genesis.events.is_empty() {
                return Err(ParseError {
                    line: 0,
                    message: "events precede the first checkpoint of a truncated journal"
                        .to_string(),
                });
            }
            if segments.len() == 1 {
                return Err(ParseError {
                    line: 0,
                    message: "truncated journal has no checkpoint to recover from".to_string(),
                });
            }
            segments.pop_front();
        }
        Ok(Journal {
            config,
            segments,
            dropped_segments,
            dropped_events,
        })
    }

    /// Rebuilds an engine from the earliest retained state — genesis, or
    /// the oldest retained checkpoint after truncation — re-servicing
    /// every retained event and verifying each recorded routing decision
    /// and outcome (the audit path). Returns the engine on success.
    pub fn replay(&self) -> Result<Engine, ReplayError> {
        self.replay_from(0)
    }

    /// The crash-recovery path: restores the **latest** checkpoint and
    /// replays only the journal tail (O(tail), not O(history)), with the
    /// same divergence detection on the replayed events. The returned
    /// engine carries this journal (retained history included), so it
    /// keeps recording where the recording left off. Consumes the
    /// journal so multi-megabyte checkpoint snapshots move instead of
    /// being copied; clone first to keep a caller-side copy.
    pub fn recover_engine(self) -> Result<Engine, ReplayError> {
        let latest = self
            .segments
            .iter()
            .rposition(|s| s.base.is_some())
            .unwrap_or(0);
        let mut engine = self.replay_from(latest)?;
        engine.attach_journal(self);
        Ok(engine)
    }

    /// Restores the state at the start of segment `start` (fresh engine
    /// for genesis, snapshot restore otherwise) and replays the events of
    /// segments `start..`, batch by batch, verifying outcomes.
    fn replay_from(&self, start: usize) -> Result<Engine, ReplayError> {
        let mut engine = match self.segments[start].base.as_ref() {
            None => {
                let mut cfg = self.config.clone();
                cfg.journal = true;
                Engine::new(cfg)
            }
            Some(cp) => {
                let engine =
                    Engine::restore_snapshot(&cp.snapshot).map_err(ReplayError::Corrupt)?;
                let cfg = engine.config();
                // The shard count is deliberately NOT cross-checked: the
                // header records the genesis count, and epoch records in
                // between can have resized the engine arbitrarily.
                if cfg.machines_per_shard != self.config.machines_per_shard
                    || cfg.backend != self.config.backend
                {
                    return Err(ReplayError::Corrupt(ParseError {
                        line: 0,
                        message: format!(
                            "checkpoint config ({} machines/shard, {}) does not match \
                             the journal header ({} machines/shard, {})",
                            cfg.machines_per_shard,
                            cfg.backend,
                            self.config.machines_per_shard,
                            self.config.backend
                        ),
                    }));
                }
                engine
            }
        };
        // Replay records into a fresh journal so replayed events can be
        // compared index-for-index with the tail.
        engine.reset_journal();
        let offset: usize = self
            .segments
            .iter()
            .take(start)
            .map(|s| s.events.len())
            .sum();
        let tail: Vec<JournalEvent> = self
            .segments
            .iter()
            .skip(start)
            .flat_map(|s| s.events.iter().copied())
            .collect();
        // Epoch records of the replayed segments, re-anchored at global
        // tail positions; each is applied exactly where the recorded
        // engine resharded.
        let mut epochs: Vec<(usize, &EpochRecord)> = Vec::new();
        let mut seg_offset = 0usize;
        for s in self.segments.iter().skip(start) {
            for (pos, rec) in &s.epochs {
                epochs.push((seg_offset + pos, rec));
            }
            seg_offset += s.events.len();
        }
        let mut next_epoch = 0usize;
        let apply = |engine: &mut Engine,
                     up_to: usize,
                     next_epoch: &mut usize|
         -> Result<(), ReplayError> {
            while *next_epoch < epochs.len() && epochs[*next_epoch].0 <= up_to {
                let (_, rec) = epochs[*next_epoch];
                engine
                    .apply_epoch(rec)
                    .map_err(|message| ReplayError::Corrupt(ParseError { line: 0, message }))?;
                *next_epoch += 1;
            }
            Ok(())
        };
        let mut idx = 0usize;
        while idx < tail.len() {
            apply(&mut engine, idx, &mut next_epoch)?;
            let batch = tail[idx].batch;
            let mut end = idx;
            while end < tail.len() && tail[end].batch == batch {
                engine.submit(tail[end].request);
                end += 1;
            }
            engine.flush();
            // The replay engine never checkpoints, so its whole journal
            // is one open segment.
            let replayed = engine.journal().expect("journal enabled").tail_events();
            for (i, recorded) in tail.iter().enumerate().take(end).skip(idx) {
                let got = replayed.get(i).copied();
                // Batch numbering restarts in the replay engine; compare
                // everything else exactly.
                let matches = got.is_some_and(|g| {
                    g.shard == recorded.shard
                        && g.request == recorded.request
                        && g.result == recorded.result
                });
                if !matches {
                    return Err(ReplayError::Divergence(Box::new(ReplayDivergence {
                        index: offset + i,
                        recorded: *recorded,
                        replayed: got,
                    })));
                }
            }
            idx = end;
        }
        // Trailing epoch records (a resize after the last recorded
        // event) still apply — the recovered engine must serve at the
        // recorded epoch.
        apply(&mut engine, tail.len(), &mut next_epoch)?;
        // Replay re-numbers flushes by *eventful* batches only — empty
        // pre-crash flushes left no events, so the replayed counter can
        // lag the recorded batch numbers. Resuming recording with a
        // stale counter would reuse an already-recorded batch number and
        // merge two distinct flushes at the next replay; pin the counter
        // past every recorded batch.
        if let Some(last) = tail.last() {
            engine.bump_batches_past(last.batch);
        } else if let Some(cp) = self.segments[start].base.as_ref() {
            engine.bump_batches_past(cp.batches.saturating_sub(1));
        }
        Ok(engine)
    }
}
