//! The engine's instrument bundle: named handles into an attached
//! [`realloc_telemetry::Telemetry`] registry, resolved once at
//! [`crate::Engine::attach_telemetry`] time so the hot paths never touch
//! the registry's name map.
//!
//! # What gets measured
//!
//! * **Flush pipeline phases**, one histogram sample per flush:
//!   `engine_flush_queue_wait_nanos` (first enqueue → flush start),
//!   `engine_route_nanos` (batch route+enqueue time, recorded by
//!   `ingest`), `engine_flush_barrier_nanos` (drain, inline or pool
//!   barrier), `engine_shard_drain_nanos` (per shard per flush, recorded
//!   by the shard itself on whichever worker drains it),
//!   `engine_flush_journal_nanos` (append loop) and
//!   `engine_flush_total_nanos`.
//! * **Sampled service latency** — timing every request would cost two
//!   clock reads per request (~2.5% on the ingest benchmark, over the
//!   overhead budget), so shards time one request in
//!   [`SERVICE_SAMPLE_EVERY`] into `engine_service_sampled_nanos` and
//!   accumulate locally, merging into the shared histogram once per
//!   drain.
//! * **The exact cost histogram, adapted** — per-flush, each serviced
//!   request's reallocation cost is folded into an engine-lifetime
//!   [`CostHistogram`] (the *exact* structure from [`crate::metrics`])
//!   whose p50/p95/p99/mean are re-published as gauges
//!   (`engine_realloc_cost_p50` …), and into the registry's log-bucketed
//!   `engine_realloc_cost` histogram. The exact histogram is adapted
//!   into the registry, not replaced by it.
//! * **Lifetime counters and gauges** — requests/failures/reallocations/
//!   migrations/flushes/checkpoints/resizes, active jobs, routing epoch,
//!   shard count. Counters accumulate at the engine level, so they
//!   survive resizes by construction (the same carryover guarantee the
//!   exact metrics path gets from [`crate::metrics::Carryover`]).
//!
//! None of this state enters the engine's [`realloc_core::Restorable`]
//! snapshot: replication digests must stay a pure function of the
//! replayed event stream, and wall-clock latencies are not. Embedders
//! that want telemetry to survive a process restart persist the registry
//! itself via [`realloc_telemetry::Telemetry::snapshot_text`].

use crate::metrics::CostHistogram;
use realloc_telemetry::{Counter, Gauge, Histo, Telemetry};

/// Shards time one request in this many (power of two: the modulo is a
/// mask) — amortizing the two clock reads a service-latency sample
/// costs down to noise.
pub(crate) const SERVICE_SAMPLE_EVERY: u64 = 8;

/// The instrument handles a shard carries into its drain loop (cloned
/// per shard; all handles are `Send + Sync` shims over the shared
/// registry).
#[derive(Clone, Debug)]
pub(crate) struct ShardTele {
    /// The owning telemetry (for the clock).
    pub t: Telemetry,
    /// One drain-duration sample per shard per flush.
    pub drain_nanos: Histo,
    /// Sampled per-request service latency (merged once per drain).
    pub service_nanos: Histo,
}

/// Engine-level instruments; `None` on engines without telemetry.
pub(crate) struct EngineTele {
    /// The attached telemetry handle (clock, trace ring, registry).
    pub t: Telemetry,
    pub requests_total: Counter,
    pub failed_total: Counter,
    pub reallocations_total: Counter,
    pub migrations_total: Counter,
    pub flushes_total: Counter,
    pub checkpoints_total: Counter,
    pub resizes_total: Counter,
    pub rebalance_pins_total: Counter,
    pub active_jobs: Gauge,
    pub epoch: Gauge,
    pub shards: Gauge,
    pub queue_wait: Histo,
    pub route: Histo,
    pub barrier: Histo,
    pub journal_append: Histo,
    pub flush_total: Histo,
    pub flush_events: Histo,
    pub checkpoint_nanos: Histo,
    pub drain_nanos: Histo,
    pub service_nanos: Histo,
    pub realloc_cost: Histo,
    pub cost_p50: Gauge,
    pub cost_p95: Gauge,
    pub cost_p99: Gauge,
    pub cost_mean_milli: Gauge,
    /// Exact engine-lifetime cost distribution feeding the gauges above.
    pub cost_exact: CostHistogram,
    /// Clock nanos of the first enqueue since the last flush — the
    /// queue-wait phase start.
    pub first_enqueue_at: Option<u64>,
}

impl EngineTele {
    /// Resolves every instrument against `t`; `None` when `t` is
    /// disabled (the engine then skips instrumentation entirely).
    pub fn build(t: &Telemetry) -> Option<Box<EngineTele>> {
        if !t.is_enabled() {
            return None;
        }
        Some(Box::new(EngineTele {
            requests_total: t.counter("engine_requests_total"),
            failed_total: t.counter("engine_failed_total"),
            reallocations_total: t.counter("engine_reallocations_total"),
            migrations_total: t.counter("engine_migrations_total"),
            flushes_total: t.counter("engine_flushes_total"),
            checkpoints_total: t.counter("engine_checkpoints_total"),
            resizes_total: t.counter("engine_resizes_total"),
            rebalance_pins_total: t.counter("engine_rebalance_pins_total"),
            active_jobs: t.gauge("engine_active_jobs"),
            epoch: t.gauge("engine_epoch"),
            shards: t.gauge("engine_shards"),
            queue_wait: t.histogram("engine_flush_queue_wait_nanos"),
            route: t.histogram("engine_route_nanos"),
            barrier: t.histogram("engine_flush_barrier_nanos"),
            journal_append: t.histogram("engine_flush_journal_nanos"),
            flush_total: t.histogram("engine_flush_total_nanos"),
            flush_events: t.histogram("engine_flush_events"),
            checkpoint_nanos: t.histogram("engine_checkpoint_nanos"),
            drain_nanos: t.histogram("engine_shard_drain_nanos"),
            service_nanos: t.histogram("engine_service_sampled_nanos"),
            realloc_cost: t.histogram("engine_realloc_cost"),
            cost_p50: t.gauge("engine_realloc_cost_p50"),
            cost_p95: t.gauge("engine_realloc_cost_p95"),
            cost_p99: t.gauge("engine_realloc_cost_p99"),
            cost_mean_milli: t.gauge("engine_realloc_cost_mean_milli"),
            cost_exact: CostHistogram::new(),
            first_enqueue_at: None,
            t: t.clone(),
        }))
    }

    /// Current clock nanos.
    pub fn now(&self) -> u64 {
        self.t.now_nanos()
    }

    /// The handle bundle shards need during drains.
    pub fn shard_tele(&self) -> ShardTele {
        ShardTele {
            t: self.t.clone(),
            drain_nanos: self.drain_nanos.clone(),
            service_nanos: self.service_nanos.clone(),
        }
    }

    /// Republishes the exact-cost gauges from the accumulated
    /// [`CostHistogram`] (called once per flush).
    pub fn publish_cost_gauges(&self) {
        self.cost_p50.set(self.cost_exact.percentile(0.50));
        self.cost_p95.set(self.cost_exact.percentile(0.95));
        self.cost_p99.set(self.cost_exact.percentile(0.99));
        self.cost_mean_milli
            .set((self.cost_exact.mean() * 1000.0) as u64);
    }
}
