//! # realloc-core
//!
//! Core types and mathematics for *reallocation scheduling*, the framework of
//! Bender, Farach-Colton, Fekete, Fineman and Gilbert, **"Reallocation
//! Problems in Scheduling"**, SPAA 2013 (arXiv:1305.6555).
//!
//! The problem: unit-length jobs arrive and depart online; each job `j` has a
//! window `[a_j, d_j]` of timeslots in which it must be scheduled on one of
//! `m` machines, one job per `(machine, slot)`. Servicing a request may force
//! previously scheduled jobs to move. The *reallocation cost* of a request is
//! the number of jobs rescheduled; the *migration cost* is the number of jobs
//! whose machine changes (paper §2).
//!
//! This crate holds everything shared between the paper's scheduler
//! ([`realloc-reservation`]), the multi-machine/alignment wrappers
//! ([`realloc-multi`]), and the baselines ([`realloc-baselines`]):
//!
//! * [`window`] — windows, spans, the alignment predicate and `ALIGNED(W)`
//!   (paper §2 and §5),
//! * [`tower`] — the level thresholds `L₁ = 2⁵`, `L_{ℓ+1} = 2^{L_ℓ/4}`
//!   (paper §4, "Interval Decomposition") and `log*`,
//! * [`job`], [`request`] — the job model and on-line request sequences,
//! * [`cost`] — reallocation/migration cost accounting,
//! * [`schedule`] — schedule snapshots and feasibility validation,
//! * [`feasibility`] — offline feasibility (exact EDF for unit jobs) and
//!   `γ`-underallocation density checks (paper Lemma 2),
//! * [`traits`] — the `Reallocator` interfaces all schedulers implement,
//! * [`router`] — epoch-versioned shard routing tables (the serving
//!   layer's elastic-resharding primitive).
//!
//! [`realloc-reservation`]: ../realloc_reservation/index.html
//! [`realloc-multi`]: ../realloc_multi/index.html
//! [`realloc-baselines`]: ../realloc_baselines/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod cost;
pub mod crc;
pub mod error;
pub mod feasibility;
pub mod job;
pub mod request;
pub mod router;
pub mod schedule;
pub mod snapshot;
pub mod textio;
pub mod tower;
pub mod traits;
pub mod window;

pub use clock::Clock;
pub use cost::{CostMeter, Move, Placement, RequestOutcome, SlotMove};
pub use error::Error;
pub use job::{Job, JobId};
pub use request::{Request, RequestSeq};
pub use router::{Router, RouterError, TENANT_SHIFT};
pub use schedule::{ScheduleSnapshot, ValidationError};
pub use snapshot::{Restorable, SnapshotNode, SnapshotWriter, SNAPSHOT_HEADER};
pub use tower::{log_star, Tower};
pub use traits::{Reallocator, SingleMachineReallocator};
pub use window::Window;

/// A point on the discrete time axis. Slot `t` is the unit interval
/// `[t, t+1)`; a window `[a, d]` therefore contains the `d − a` slots
/// `a, a+1, …, d−1` ("the window W comprises |W| timeslots", paper §2).
pub type Time = u64;

/// A unit timeslot, identified by its left endpoint.
pub type Slot = u64;
