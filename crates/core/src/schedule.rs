//! Schedule snapshots and validation.
//!
//! Paper §2: *"Before each scheduling request, the scheduler must output a
//! feasible schedule for all the active jobs. A feasible schedule is one in
//! which each job is properly scheduled on a particular machine for a time
//! in the job's available window, and no two jobs on the same machine are
//! scheduled for the same time."*
//!
//! [`validate`] checks exactly that, against the jobs' **original** windows
//! (so trimming/alignment inside a scheduler can never silently weaken the
//! contract).

use crate::cost::Placement;
use crate::job::JobId;
use crate::window::Window;
use fxhash::FxHashMap;
use std::collections::BTreeMap;

/// A flat snapshot of the current schedule: each active job's placement.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleSnapshot {
    assignments: BTreeMap<JobId, Placement>,
}

impl ScheduleSnapshot {
    /// Empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a snapshot from `(job, placement)` pairs.
    pub fn from_assignments<I: IntoIterator<Item = (JobId, Placement)>>(iter: I) -> Self {
        ScheduleSnapshot {
            assignments: iter.into_iter().collect(),
        }
    }

    /// Records (or overwrites) a job's placement.
    pub fn set(&mut self, job: JobId, placement: Placement) {
        self.assignments.insert(job, placement);
    }

    /// Removes a job.
    pub fn remove(&mut self, job: JobId) -> Option<Placement> {
        self.assignments.remove(&job)
    }

    /// The placement of `job`, if scheduled.
    pub fn placement(&self, job: JobId) -> Option<Placement> {
        self.assignments.get(&job).copied()
    }

    /// Number of scheduled jobs.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Iterates over `(job, placement)` in job order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, Placement)> + '_ {
        self.assignments.iter().map(|(&j, &p)| (j, p))
    }

    /// The set of placement changes between two snapshots of the same job
    /// population — used to charge full-recompute baselines (EDF/LLF) their
    /// honest reallocation cost.
    pub fn diff(&self, after: &ScheduleSnapshot) -> Vec<crate::cost::Move> {
        let mut moves = Vec::new();
        for (&job, &from) in &self.assignments {
            match after.assignments.get(&job) {
                Some(&to) if to != from => moves.push(crate::cost::Move {
                    job,
                    from: Some(from),
                    to: Some(to),
                }),
                Some(_) => {}
                None => moves.push(crate::cost::Move {
                    job,
                    from: Some(from),
                    to: None,
                }),
            }
        }
        for (&job, &to) in &after.assignments {
            if !self.assignments.contains_key(&job) {
                moves.push(crate::cost::Move {
                    job,
                    from: None,
                    to: Some(to),
                });
            }
        }
        moves
    }
}

/// Why a snapshot failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// An active job has no placement.
    MissingJob(JobId),
    /// A scheduled job is not active.
    GhostJob(JobId),
    /// A job sits outside its window.
    OutOfWindow {
        /// The offending job.
        job: JobId,
        /// Where it was placed.
        placement: Placement,
        /// Its admissible window.
        window: Window,
    },
    /// Two jobs share a `(machine, slot)`.
    Collision {
        /// First job.
        a: JobId,
        /// Second job.
        b: JobId,
        /// The shared placement.
        placement: Placement,
    },
    /// A machine index out of `0..m`.
    BadMachine {
        /// The offending job.
        job: JobId,
        /// The out-of-range machine index.
        machine: usize,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::MissingJob(j) => write!(f, "active job {j} is unscheduled"),
            ValidationError::GhostJob(j) => write!(f, "scheduled job {j} is not active"),
            ValidationError::OutOfWindow {
                job,
                placement,
                window,
            } => write!(
                f,
                "job {job} at machine {} slot {} outside window {window}",
                placement.machine, placement.slot
            ),
            ValidationError::Collision { a, b, placement } => write!(
                f,
                "jobs {a} and {b} collide at machine {} slot {}",
                placement.machine, placement.slot
            ),
            ValidationError::BadMachine { job, machine } => {
                write!(f, "job {job} on nonexistent machine {machine}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a snapshot against the active job set (ids → original windows)
/// and the machine count, per the paper's feasibility definition.
pub fn validate(
    snapshot: &ScheduleSnapshot,
    active: &BTreeMap<JobId, Window>,
    machines: usize,
) -> Result<(), ValidationError> {
    for &job in active.keys() {
        if snapshot.placement(job).is_none() {
            return Err(ValidationError::MissingJob(job));
        }
    }
    let mut occupied: FxHashMap<Placement, JobId> =
        FxHashMap::with_capacity_and_hasher(snapshot.len(), Default::default());
    for (job, placement) in snapshot.iter() {
        let window = match active.get(&job) {
            Some(w) => *w,
            None => return Err(ValidationError::GhostJob(job)),
        };
        if placement.machine >= machines {
            return Err(ValidationError::BadMachine {
                job,
                machine: placement.machine,
            });
        }
        if !window.contains_slot(placement.slot) {
            return Err(ValidationError::OutOfWindow {
                job,
                placement,
                window,
            });
        }
        if let Some(other) = occupied.insert(placement, job) {
            return Err(ValidationError::Collision {
                a: other,
                b: job,
                placement,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(machine: usize, slot: u64) -> Placement {
        Placement { machine, slot }
    }

    fn active(pairs: &[(u64, Window)]) -> BTreeMap<JobId, Window> {
        pairs.iter().map(|&(id, w)| (JobId(id), w)).collect()
    }

    #[test]
    fn valid_schedule_passes() {
        let a = active(&[(1, Window::new(0, 4)), (2, Window::new(0, 4))]);
        let mut s = ScheduleSnapshot::new();
        s.set(JobId(1), p(0, 0));
        s.set(JobId(2), p(0, 1));
        assert_eq!(validate(&s, &a, 1), Ok(()));
    }

    #[test]
    fn missing_job_detected() {
        let a = active(&[(1, Window::new(0, 4))]);
        let s = ScheduleSnapshot::new();
        assert_eq!(
            validate(&s, &a, 1),
            Err(ValidationError::MissingJob(JobId(1)))
        );
    }

    #[test]
    fn ghost_job_detected() {
        let a = active(&[]);
        let mut s = ScheduleSnapshot::new();
        s.set(JobId(5), p(0, 0));
        assert_eq!(
            validate(&s, &a, 1),
            Err(ValidationError::GhostJob(JobId(5)))
        );
    }

    #[test]
    fn out_of_window_detected() {
        let a = active(&[(1, Window::new(0, 4))]);
        let mut s = ScheduleSnapshot::new();
        s.set(JobId(1), p(0, 4));
        assert!(matches!(
            validate(&s, &a, 1),
            Err(ValidationError::OutOfWindow { .. })
        ));
    }

    #[test]
    fn collision_detected() {
        let a = active(&[(1, Window::new(0, 4)), (2, Window::new(0, 4))]);
        let mut s = ScheduleSnapshot::new();
        s.set(JobId(1), p(0, 2));
        s.set(JobId(2), p(0, 2));
        assert!(matches!(
            validate(&s, &a, 1),
            Err(ValidationError::Collision { .. })
        ));
    }

    #[test]
    fn same_slot_other_machine_ok() {
        let a = active(&[(1, Window::new(0, 4)), (2, Window::new(0, 4))]);
        let mut s = ScheduleSnapshot::new();
        s.set(JobId(1), p(0, 2));
        s.set(JobId(2), p(1, 2));
        assert_eq!(validate(&s, &a, 2), Ok(()));
    }

    #[test]
    fn bad_machine_detected() {
        let a = active(&[(1, Window::new(0, 4))]);
        let mut s = ScheduleSnapshot::new();
        s.set(JobId(1), p(3, 2));
        assert!(matches!(
            validate(&s, &a, 2),
            Err(ValidationError::BadMachine { .. })
        ));
    }

    #[test]
    fn diff_reports_changes() {
        let mut before = ScheduleSnapshot::new();
        before.set(JobId(1), p(0, 0));
        before.set(JobId(2), p(0, 1));
        let mut after = ScheduleSnapshot::new();
        after.set(JobId(1), p(0, 0)); // unchanged
        after.set(JobId(2), p(1, 1)); // migrated
        after.set(JobId(3), p(0, 2)); // new
        let moves = before.diff(&after);
        assert_eq!(moves.len(), 2);
        let outcome = crate::cost::RequestOutcome { moves };
        assert_eq!(outcome.reallocation_cost(), 1);
        assert_eq!(outcome.migration_cost(), 1);
    }
}
