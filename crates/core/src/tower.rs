//! The level thresholds of paper §4 ("Interval Decomposition") and `log*`.
//!
//! The reservation scheduler partitions window spans into *levels*:
//!
//! ```text
//! L_{ℓ+1} = 2^5        if ℓ = 0
//!           2^{L_ℓ/4}  if ℓ > 0
//! ```
//!
//! so `L₁ = 32`, `L₂ = 256`, `L₃ = 2⁶⁴` — a tower of `4√2` that reaches any
//! fixed span in `O(log* Δ)` steps. A *level-ℓ* window has span
//! `L_ℓ < |W| ≤ L_{ℓ+1}`; level-ℓ windows are partitioned into *level-ℓ
//! intervals* of `L_ℓ` slots (note `L_ℓ = 4·lg L_{ℓ+1}`, which is exactly
//! what Lemma 8's counting needs). Spans `≤ L₁` form the base level 0, where
//! the naive cascade of Lemma 4 costs only `O(lg L₁) = O(1)`.
//!
//! Because the time axis is `u64`, the paper tower has at most three
//! populated levels; [`Tower::custom`] lets tests and ablations use slower
//! ladders that exercise deeper recursions with small spans.

/// Base-2 iterated logarithm: the number of times `lg` must be applied to
/// `n` before the value drops to `≤ 1`.
///
/// `log_star(1) = 0`, `log_star(2) = 1`, `log_star(4) = 2`,
/// `log_star(16) = 3`, `log_star(65536) = 4`, `log_star(2^64 - 1) = 5`.
pub fn log_star(mut n: u64) -> u32 {
    let mut k = 0;
    while n > 1 {
        n = 64 - u64::from(n.leading_zeros()) - u64::from(n.is_power_of_two());
        // n is now floor(lg n_old) for non-powers, lg n_old for powers.
        k += 1;
    }
    k
}

/// A ladder of span thresholds `L₁ < L₂ < …` defining the scheduler levels.
///
/// Level 0 handles spans `≤ L₁`; level `ℓ ≥ 1` handles spans
/// `L_ℓ < |W| ≤ L_{ℓ+1}` with intervals of `L_ℓ` slots; spans above the last
/// threshold belong to the final level, whose interval span is the last
/// threshold (the paper's `L₃ = 2⁶⁴` exceeds the `u64` time axis, so the
/// final level is effectively unbounded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tower {
    /// `thresholds[ℓ] = L_{ℓ+1}`; strictly increasing powers of two.
    thresholds: Vec<u64>,
}

impl Tower {
    /// The paper's tower: `L₁ = 32`, `L₂ = 256` (and `L₃ = 2⁶⁴`, which
    /// saturates the `u64` axis and is represented implicitly).
    pub fn paper() -> Self {
        Tower {
            thresholds: vec![32, 256],
        }
    }

    /// A custom ladder for tests and ablations.
    ///
    /// # Panics
    ///
    /// Panics unless the thresholds are strictly increasing powers of two,
    /// with at least one entry and first entry `≥ 2`, and each step at least
    /// doubling (so every level contains at least one window span).
    pub fn custom(thresholds: Vec<u64>) -> Self {
        assert!(!thresholds.is_empty(), "tower needs at least one threshold");
        let mut prev = 1u64;
        for &t in &thresholds {
            assert!(t.is_power_of_two(), "threshold {t} not a power of two");
            assert!(
                t >= 2 * prev,
                "thresholds must at least double: {prev} -> {t}"
            );
            prev = t;
        }
        Tower { thresholds }
    }

    /// The thresholds `L₁, L₂, …` of this tower.
    pub fn thresholds(&self) -> &[u64] {
        &self.thresholds
    }

    /// The level responsible for windows of span `span`: the number of
    /// thresholds strictly below `span`.
    pub fn level_of(&self, span: u64) -> usize {
        debug_assert!(span >= 1);
        self.thresholds.iter().take_while(|&&t| t < span).count()
    }

    /// The interval span `L_ℓ` used by level `ℓ ≥ 1`. Level 0 has no
    /// interval machinery (its spans are at most `L₁` and are handled by the
    /// constant-cost base cascade).
    pub fn interval_span(&self, level: usize) -> u64 {
        debug_assert!(level >= 1, "level 0 has no intervals");
        self.thresholds[level - 1]
    }

    /// Largest window span handled by `level`, or `None` when the level is
    /// the unbounded top level.
    pub fn max_span_of_level(&self, level: usize) -> Option<u64> {
        self.thresholds.get(level).copied()
    }

    /// Number of levels needed for windows of span up to `max_span`
    /// (i.e. `level_of(max_span) + 1`). This is the paper's `O(log* Δ)`.
    pub fn levels_for(&self, max_span: u64) -> usize {
        self.level_of(max_span) + 1
    }

    /// Total number of distinct levels this tower can ever populate
    /// (including the unbounded top level).
    pub fn max_levels(&self) -> usize {
        self.thresholds.len() + 1
    }
}

impl Default for Tower {
    fn default() -> Self {
        Tower::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 1);
        assert_eq!(log_star(3), 2); // 3 -> 1
        assert_eq!(log_star(4), 2); // 4 -> 2 -> 1
        assert_eq!(log_star(16), 3); // 16 -> 4 -> 2 -> 1
        assert_eq!(log_star(65536), 4);
        assert_eq!(log_star(u64::MAX), 5);
    }

    #[test]
    fn log_star_monotone() {
        let mut prev = 0;
        for i in 0..64 {
            let v = log_star(1u64 << i);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn paper_tower_relation() {
        // L_{ℓ+1} = 2^{L_ℓ/4} and L_ℓ = 4·lg(L_{ℓ+1}).
        let t = Tower::paper();
        let l1 = t.thresholds()[0];
        let l2 = t.thresholds()[1];
        assert_eq!(l1, 32);
        assert_eq!(l2, 1u64 << (l1 / 4));
        assert_eq!(l1, 4 * l2.trailing_zeros() as u64);
        // L₃ = 2^{256/4} = 2^64 which exceeds u64: top level is unbounded.
        assert_eq!(t.max_span_of_level(2), None);
    }

    #[test]
    fn levels_partition_spans() {
        let t = Tower::paper();
        assert_eq!(t.level_of(1), 0);
        assert_eq!(t.level_of(32), 0);
        assert_eq!(t.level_of(33), 1);
        assert_eq!(t.level_of(64), 1);
        assert_eq!(t.level_of(256), 1);
        assert_eq!(t.level_of(257), 2);
        assert_eq!(t.level_of(u64::MAX), 2);
        assert_eq!(t.interval_span(1), 32);
        assert_eq!(t.interval_span(2), 256);
    }

    #[test]
    fn custom_tower_levels() {
        let t = Tower::custom(vec![4, 16, 64]);
        assert_eq!(t.level_of(4), 0);
        assert_eq!(t.level_of(8), 1);
        assert_eq!(t.level_of(16), 1);
        assert_eq!(t.level_of(32), 2);
        assert_eq!(t.level_of(128), 3);
        assert_eq!(t.interval_span(1), 4);
        assert_eq!(t.interval_span(3), 64);
        assert_eq!(t.max_levels(), 4);
    }

    #[test]
    #[should_panic]
    fn custom_rejects_non_powers() {
        let _ = Tower::custom(vec![6, 24]);
    }

    #[test]
    #[should_panic]
    fn custom_rejects_non_doubling() {
        let _ = Tower::custom(vec![8, 8]);
    }

    #[test]
    fn levels_for_is_log_star_like() {
        let t = Tower::paper();
        assert_eq!(t.levels_for(16), 1);
        assert_eq!(t.levels_for(100), 2);
        assert_eq!(t.levels_for(1 << 40), 3);
    }
}
