//! Epoch-versioned request routing for sharded serving layers.
//!
//! A [`Router`] is the pure routing function of a sharded engine: given a
//! job id, which shard owns it? It is `(epoch, shards)`-versioned so the
//! mapping can *change over the lifetime of a running engine* (elastic
//! resharding, tenant rebalancing) while staying a pure function of the
//! router's own state — two routers with equal state route identically,
//! whatever traffic either has seen.
//!
//! * **Hash routing** — by default an id routes by FNV-1a over its bytes,
//!   modulo the shard count. With no pins this is bit-compatible with the
//!   fixed routing the engine used before routers existed, so snapshots
//!   and journals recorded by earlier versions replay to identical
//!   placements.
//! * **Tenant pins** — a tenant (the id bits above [`TENANT_SHIFT`]) can
//!   be pinned to a dedicated shard. Pinned shards are removed from the
//!   hash range, so a pinned "whale" tenant is fully isolated: its jobs
//!   cannot crowd other tenants' density budgets and vice versa. At least
//!   one shard must always remain unpinned to carry hash traffic.
//! * **Epochs** — every routing change bumps [`Router::epoch`]. Engines
//!   journal the new table as an epoch record, so a replay that crosses a
//!   resize re-applies the same routing at the same position and lands on
//!   byte-identical placements.
//!
//! The router serializes as a `router` snapshot section (see
//! [`Restorable`]), embedded by the engine's own snapshot:
//!
//! ```text
//! !begin router
//! r 3 6            # epoch 3, 6 shards
//! p 7 5            # tenant 7 pinned to shard 5
//! !end
//! ```

use crate::snapshot::{Fields, Restorable, SnapshotNode, SnapshotWriter};
use crate::textio::ParseError;
use crate::JobId;
use std::collections::BTreeMap;

/// Bits of the global job-id space reserved for the external (per-tenant)
/// id; the tenant id occupies the bits above. Shared between the engine's
/// tenant namespacing and the router's pin lookup.
pub const TENANT_SHIFT: u32 = 48;

/// The tenant namespace an id belongs to (its bits above
/// [`TENANT_SHIFT`]; tenant `0` is the direct, un-namespaced id space).
pub fn tenant_of(id: JobId) -> u64 {
    id.0 >> TENANT_SHIFT
}

/// Stable FNV-1a hash of a job id — the routing hash. Deterministic
/// across engine instances, processes, and versions by construction.
pub fn route_hash(id: JobId) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in id.0.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Why a routing table could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouterError {
    /// Shard count was zero.
    NoShards,
    /// A pin named a shard outside `0..shards`.
    PinOutOfRange {
        /// The pinned tenant.
        tenant: u64,
        /// The out-of-range shard.
        shard: usize,
    },
    /// Pins covered every shard, leaving no hash range.
    NoOpenShard,
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::NoShards => write!(f, "router needs at least one shard"),
            RouterError::PinOutOfRange { tenant, shard } => {
                write!(f, "tenant {tenant} pinned to nonexistent shard {shard}")
            }
            RouterError::NoOpenShard => {
                write!(f, "pins cover every shard; no shard left for hash traffic")
            }
        }
    }
}

impl std::error::Error for RouterError {}

/// Versioned routing table; see the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Router {
    epoch: u64,
    shards: usize,
    /// Tenant → dedicated shard.
    pins: BTreeMap<u64, usize>,
    /// Sorted shard indices not claimed by any pin (the hash range).
    /// Derived from `shards` + `pins`; rebuilt on every change.
    open: Vec<usize>,
}

impl Router {
    /// Epoch-0 router: plain hash routing over `shards` shards, no pins.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero (construction-time bug, not input).
    pub fn new(shards: usize) -> Router {
        assert!(shards >= 1, "router needs at least one shard");
        Router {
            epoch: 0,
            shards,
            pins: BTreeMap::new(),
            open: (0..shards).collect(),
        }
    }

    /// Builds a router from explicit parts, validating the table (pins in
    /// range, at least one unpinned shard). This is the untrusted-input
    /// path used by journal epoch records.
    pub fn from_parts(
        epoch: u64,
        shards: usize,
        pins: impl IntoIterator<Item = (u64, usize)>,
    ) -> Result<Router, RouterError> {
        if shards == 0 {
            return Err(RouterError::NoShards);
        }
        let mut table = BTreeMap::new();
        for (tenant, shard) in pins {
            if shard >= shards {
                return Err(RouterError::PinOutOfRange { tenant, shard });
            }
            table.insert(tenant, shard);
        }
        let open = Self::open_of(shards, &table);
        if open.is_empty() {
            return Err(RouterError::NoOpenShard);
        }
        Ok(Router {
            epoch,
            shards,
            pins: table,
            open,
        })
    }

    fn open_of(shards: usize, pins: &BTreeMap<u64, usize>) -> Vec<usize> {
        (0..shards)
            .filter(|s| !pins.values().any(|p| p == s))
            .collect()
    }

    /// Current routing epoch (bumped by every table change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards the table routes over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The pin table, ordered by tenant.
    pub fn pins(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.pins.iter().map(|(&t, &s)| (t, s))
    }

    /// The shard a tenant is pinned to, if any.
    pub fn pin_of(&self, tenant: u64) -> Option<usize> {
        self.pins.get(&tenant).copied()
    }

    /// Whether the table is the trivial epoch-0 hash table (no pins).
    pub fn is_genesis(&self) -> bool {
        self.epoch == 0 && self.pins.is_empty()
    }

    /// The shard `id` routes to — a pure function of the id and this
    /// table. Pinned tenants go to their shard; everything else hashes
    /// over the unpinned shards.
    pub fn route(&self, id: JobId) -> usize {
        if !self.pins.is_empty() {
            if let Some(&shard) = self.pins.get(&tenant_of(id)) {
                return shard;
            }
        }
        self.open[(route_hash(id) % self.open.len() as u64) as usize]
    }

    /// A candidate table for the next epoch: `new_shards` shards, keeping
    /// every pin that still fits (pins to shards `>= new_shards` are
    /// dropped — their tenants fall back to hash routing). The epoch is
    /// **not** bumped here; [`Router::commit`] does that when the engine
    /// actually adopts the table.
    pub fn retarget(&self, new_shards: usize) -> Result<Router, RouterError> {
        let pins = self
            .pins
            .iter()
            .filter(|&(_, &s)| s < new_shards)
            .map(|(&t, &s)| (t, s));
        Router::from_parts(self.epoch, new_shards, pins)
    }

    /// A candidate table with `tenant` pinned to `shard` (replacing any
    /// existing pin for that tenant).
    pub fn with_pin(&self, tenant: u64, shard: usize) -> Result<Router, RouterError> {
        let pins = self
            .pins
            .iter()
            .map(|(&t, &s)| (t, s))
            .filter(|&(t, _)| t != tenant)
            .chain(std::iter::once((tenant, shard)));
        Router::from_parts(self.epoch, self.shards, pins)
    }

    /// Stamps the table with the epoch that succeeds `previous` — called
    /// by the engine at the moment a candidate table goes live. (Journal
    /// replay instead rebuilds tables with [`Router::from_parts`], which
    /// takes the recorded epoch verbatim.)
    pub fn commit(&mut self, previous: &Router) {
        self.epoch = previous.epoch + 1;
    }
}

impl Restorable for Router {
    const SNAPSHOT_KIND: &'static str = "router";

    fn write_state(&self, w: &mut SnapshotWriter) {
        w.line(format_args!("r {} {}", self.epoch, self.shards));
        for (&tenant, &shard) in &self.pins {
            w.line(format_args!("p {tenant} {shard}"));
        }
    }

    fn read_state(node: &SnapshotNode) -> Result<Self, ParseError> {
        node.expect_kind(Self::SNAPSHOT_KIND)?;
        let mut header: Option<(u64, usize)> = None;
        let mut pins: Vec<(u64, usize)> = Vec::new();
        for (line, content) in &node.lines {
            let mut f = Fields::of(*line, content);
            match f.token("op")? {
                "r" => {
                    if header.is_some() {
                        return Err(f.err("duplicate 'r' router header"));
                    }
                    let epoch = f.u64("epoch")?;
                    let shards = f.usize("shard count")?;
                    f.finish()?;
                    header = Some((epoch, shards));
                }
                "p" => {
                    let tenant = f.u64("pinned tenant")?;
                    let shard = f.usize("pinned shard")?;
                    f.finish()?;
                    if pins.iter().any(|&(t, _)| t == tenant) {
                        return Err(f.err(format!("tenant {tenant} pinned twice")));
                    }
                    pins.push((tenant, shard));
                }
                other => {
                    return Err(ParseError {
                        line: *line,
                        message: format!("unknown router snapshot op '{other}'"),
                    })
                }
            }
        }
        let (epoch, shards) = header.ok_or(ParseError {
            line: 0,
            message: "router snapshot has no 'r' header".to_string(),
        })?;
        Router::from_parts(epoch, shards, pins).map_err(|e| ParseError {
            line: 0,
            message: format!("invalid router table: {e}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpinned_router_matches_plain_fnv_mod() {
        // Bit-compatibility with the pre-router engine routing: snapshots
        // and journals from earlier versions must keep replaying to the
        // same shards.
        let r = Router::new(7);
        for id in (0..5_000u64).chain([u64::MAX, 1 << 48, (3 << 48) | 17]) {
            assert_eq!(r.route(JobId(id)), (route_hash(JobId(id)) % 7) as usize);
        }
    }

    #[test]
    fn pins_isolate_and_shrink_the_hash_range() {
        let r = Router::from_parts(1, 4, [(9u64, 3usize)]).unwrap();
        // Tenant 9 always lands on its shard…
        for ext in 0..200u64 {
            assert_eq!(r.route(JobId((9 << TENANT_SHIFT) | ext)), 3);
        }
        // …and nothing else ever does.
        for ext in 0..200u64 {
            let shard = r.route(JobId(ext));
            assert!(shard < 3, "unpinned id reached the pinned shard");
        }
    }

    #[test]
    fn tables_validate() {
        assert_eq!(
            Router::from_parts(0, 0, []).unwrap_err(),
            RouterError::NoShards
        );
        assert_eq!(
            Router::from_parts(0, 2, [(1u64, 2usize)]).unwrap_err(),
            RouterError::PinOutOfRange {
                tenant: 1,
                shard: 2
            }
        );
        assert_eq!(
            Router::from_parts(0, 2, [(1u64, 0usize), (2, 1)]).unwrap_err(),
            RouterError::NoOpenShard
        );
        // A pin beyond the new range is dropped by retarget, not fatal.
        let r = Router::from_parts(2, 6, [(4u64, 5usize)]).unwrap();
        let small = r.retarget(3).unwrap();
        assert_eq!(small.pin_of(4), None);
        assert_eq!(small.shards(), 3);
        assert_eq!(small.epoch(), 2, "retarget does not bump the epoch");
    }

    #[test]
    fn commit_bumps_and_snapshot_round_trips() {
        let base = Router::new(4);
        let mut next = base.retarget(6).unwrap().with_pin(7, 5).unwrap();
        next.commit(&base);
        assert_eq!(next.epoch(), 1);
        assert!(!next.is_genesis());

        let text = next.snapshot_text();
        let back = Router::restore(&text).unwrap();
        assert_eq!(back, next);
        for id in 0..500u64 {
            assert_eq!(back.route(JobId(id)), next.route(JobId(id)));
        }
    }

    #[test]
    fn malformed_router_sections_error_gracefully() {
        let good = Router::from_parts(1, 3, [(2u64, 2usize)])
            .unwrap()
            .snapshot_text();
        for (from, to) in [
            ("r 1 3", "r 1 0"),        // zero shards
            ("r 1 3", "r 1 3\nr 1 3"), // duplicate header
            ("p 2 2", "p 2 9"),        // pin out of range
            ("p 2 2", "p 2 2\np 2 1"), // tenant pinned twice
            ("p 2 2", "p 2"),          // truncated pin
            ("r 1 3", "q 1 3"),        // unknown op
        ] {
            let bad = good.replacen(from, to, 1);
            assert!(Router::restore(&bad).is_err(), "accepted {to:?}");
        }
    }
}
