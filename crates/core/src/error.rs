//! Error type shared by all schedulers.

use crate::job::JobId;
use crate::window::Window;
use std::fmt;

/// Errors returned by reallocating schedulers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// An insert reused the id of an active job.
    DuplicateJob(JobId),
    /// A delete (or lookup) named a job that is not active.
    UnknownJob(JobId),
    /// A single-machine aligned scheduler was handed an unaligned window.
    /// (The alignment wrapper of §5 must be applied first.)
    UnalignedWindow(Window),
    /// The scheduler could not find room for a job. For the reservation
    /// scheduler this means the underallocation precondition of Theorem 1 /
    /// Lemma 8 is violated; the instance may still be feasible offline.
    CapacityExhausted {
        /// The job that could not be placed.
        job: JobId,
        /// Human-readable context (which level / window / interval failed).
        detail: String,
    },
    /// The request stream is invalid for this scheduler (e.g. a sized job
    /// handed to the unit-size scheduler).
    UnsupportedJob {
        /// The offending job.
        job: JobId,
        /// Why it is unsupported.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateJob(id) => write!(f, "job {id} is already active"),
            Error::UnknownJob(id) => write!(f, "job {id} is not active"),
            Error::UnalignedWindow(w) => {
                write!(
                    f,
                    "window {w} is not aligned (span power-of-two, start multiple of span)"
                )
            }
            Error::CapacityExhausted { job, detail } => {
                write!(f, "no capacity for job {job}: {detail}")
            }
            Error::UnsupportedJob { job, detail } => {
                write!(f, "job {job} unsupported: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::CapacityExhausted {
            job: JobId(4),
            detail: "level 1 window [0, 64) has no fulfilled empty slot".into(),
        };
        let s = e.to_string();
        assert!(s.contains("j4"));
        assert!(s.contains("level 1"));
    }
}
