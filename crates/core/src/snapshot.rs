//! Versioned text framing for full-state snapshots, and the
//! [`Restorable`] capability trait.
//!
//! A snapshot is a point-in-time serialization of a scheduler's complete
//! mutable state — not a request log. Together with a journal *tail* it
//! reconstructs a scheduler exactly (checkpoint + WAL discipline), which
//! is what makes O(tail) crash recovery, journal truncation, and
//! "snapshot, ship, restore" shard migration possible at the engine
//! layer.
//!
//! The format extends the [`crate::textio`] line discipline — one record
//! per line, `#` comments ignored — with two framing primitives:
//!
//! * a mandatory first line `# realloc snapshot v1` (the version header;
//!   readers reject anything else up front), and
//! * nestable sections `!begin <kind> [args…]` / `!end`, so composite
//!   schedulers (a machine group, a sharded engine) embed their parts'
//!   snapshots verbatim as child sections.
//!
//! ```text
//! # realloc snapshot v1
//! !begin multi
//! m 2
//! j 17 0 64 1          # job 17, window [0,64), machine 1
//! !begin reservation   # machine 0's full scheduler state
//! t 32 256
//! …
//! !end
//! !begin reservation   # machine 1
//! …
//! !end
//! !end
//! ```
//!
//! Implementations must uphold the round-trip contract: `restore(
//! snapshot_text(s))` yields a scheduler that is *behaviorally
//! indistinguishable* from `s` — every subsequent request produces
//! identical moves, costs, and errors. Parsers return graceful
//! [`ParseError`]s (never panic) on truncated, malformed, or
//! inconsistent input.

use crate::textio::ParseError;
use std::fmt;

/// The mandatory first line of every snapshot document.
pub const SNAPSHOT_HEADER: &str = "# realloc snapshot v1";

/// Stable 64-bit FNV-1a digest of a text document.
///
/// This is the state-digest primitive of the replication layer: two
/// schedulers whose canonical snapshot texts are byte-identical have
/// equal digests, so a replica can verify it has not diverged from its
/// primary by exchanging 8 bytes instead of shipping a full snapshot.
/// Deterministic across processes, machines, and versions by
/// construction (no keyed hashing, no pointer-width dependence); **not**
/// collision-resistant against an adversary — this detects drift and
/// corruption, it does not authenticate.
pub fn digest64(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Builder for snapshot text: writes the version header up front and
/// keeps `!begin`/`!end` nesting balanced.
#[derive(Debug)]
pub struct SnapshotWriter {
    out: String,
    depth: usize,
}

impl SnapshotWriter {
    /// New writer with the version header already emitted.
    pub fn new() -> Self {
        let mut out = String::with_capacity(256);
        out.push_str(SNAPSHOT_HEADER);
        out.push('\n');
        SnapshotWriter { out, depth: 0 }
    }

    /// Opens a section of the given kind.
    pub fn begin(&mut self, kind: &str) {
        debug_assert!(!kind.is_empty() && !kind.contains(char::is_whitespace));
        self.out.push_str("!begin ");
        self.out.push_str(kind);
        self.out.push('\n');
        self.depth += 1;
    }

    /// Opens a section with extra argument tokens (e.g. `!begin shard 3`).
    pub fn begin_args(&mut self, kind: &str, args: fmt::Arguments<'_>) {
        use fmt::Write as _;
        debug_assert!(!kind.is_empty() && !kind.contains(char::is_whitespace));
        let _ = write!(self.out, "!begin {kind} {args}");
        self.out.push('\n');
        self.depth += 1;
    }

    /// Closes the innermost open section.
    pub fn end(&mut self) {
        assert!(self.depth > 0, "unbalanced SnapshotWriter::end");
        self.out.push_str("!end\n");
        self.depth -= 1;
    }

    /// Appends one payload record line to the current section.
    pub fn line(&mut self, args: fmt::Arguments<'_>) {
        use fmt::Write as _;
        let _ = write!(self.out, "{args}");
        self.out.push('\n');
    }

    /// Writes `value`'s state as a child section of its own kind.
    pub fn child<T: Restorable>(&mut self, value: &T) {
        self.begin(T::SNAPSHOT_KIND);
        value.write_state(self);
        self.end();
    }

    /// Finishes the document.
    ///
    /// # Panics
    ///
    /// Panics if any section is still open (a writer bug, not an input
    /// error).
    pub fn finish(self) -> String {
        assert!(self.depth == 0, "unclosed snapshot section");
        self.out
    }
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// One parsed snapshot section: its payload lines (in order, with their
/// 1-based line numbers for error reporting) and child sections.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotNode {
    /// Section kind (the token after `!begin`); empty for the root.
    pub kind: String,
    /// Extra tokens on the `!begin` line.
    pub args: Vec<String>,
    /// Payload lines, comment-stripped and trimmed, with line numbers.
    pub lines: Vec<(usize, String)>,
    /// Child sections, in document order.
    pub children: Vec<SnapshotNode>,
}

impl SnapshotNode {
    fn empty(kind: String, args: Vec<String>) -> Self {
        SnapshotNode {
            kind,
            args,
            lines: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Parses a whole snapshot document into its root node. The root
    /// itself has kind `""`; top-level sections are its children.
    pub fn parse(text: &str) -> Result<SnapshotNode, ParseError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim_end() == SNAPSHOT_HEADER => {}
            other => {
                return Err(ParseError {
                    line: 1,
                    message: format!(
                        "snapshot must start with '{SNAPSHOT_HEADER}', got {:?}",
                        other.map(|(_, l)| l).unwrap_or("")
                    ),
                })
            }
        }
        // Stack of open sections; the root sits at the bottom.
        let mut stack = vec![SnapshotNode::empty(String::new(), Vec::new())];
        for (i, raw) in lines {
            let line = i + 1;
            let content = crate::textio::line_content(raw);
            if content.is_empty() {
                continue;
            }
            if let Some(rest) = content.strip_prefix("!begin") {
                let mut toks = rest.split_whitespace();
                let kind = toks.next().ok_or(ParseError {
                    line,
                    message: "'!begin' without a section kind".to_string(),
                })?;
                let args = toks.map(str::to_string).collect();
                stack.push(SnapshotNode::empty(kind.to_string(), args));
            } else if content == "!end" {
                let done = stack.pop().expect("stack never empties below root");
                match stack.last_mut() {
                    Some(parent) => parent.children.push(done),
                    None => {
                        return Err(ParseError {
                            line,
                            message: "'!end' without a matching '!begin'".to_string(),
                        })
                    }
                }
            } else if content.starts_with('!') {
                return Err(ParseError {
                    line,
                    message: format!("unknown framing directive '{content}'"),
                });
            } else {
                stack
                    .last_mut()
                    .expect("root always open")
                    .lines
                    .push((line, content.to_string()));
            }
        }
        if stack.len() != 1 {
            return Err(ParseError {
                line: text.lines().count(),
                message: format!(
                    "snapshot truncated: {} unclosed '!begin' section(s)",
                    stack.len() - 1
                ),
            });
        }
        Ok(stack.pop().expect("root"))
    }

    /// The single child section of the given kind; errors when absent or
    /// ambiguous.
    pub fn only_child(&self, kind: &str) -> Result<&SnapshotNode, ParseError> {
        let mut found = self.children.iter().filter(|c| c.kind == kind);
        let first = found.next().ok_or_else(|| ParseError {
            line: 0,
            message: format!("snapshot has no '{kind}' section"),
        })?;
        if found.next().is_some() {
            return Err(ParseError {
                line: 0,
                message: format!("snapshot has more than one '{kind}' section"),
            });
        }
        Ok(first)
    }

    /// All child sections of the given kind, in order.
    pub fn children_of<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a SnapshotNode> {
        self.children.iter().filter(move |c| c.kind == kind)
    }

    /// Errors unless this node has the expected kind.
    pub fn expect_kind(&self, kind: &str) -> Result<(), ParseError> {
        if self.kind == kind {
            Ok(())
        } else {
            Err(ParseError {
                line: 0,
                message: format!("expected a '{kind}' section, found '{}'", self.kind),
            })
        }
    }
}

/// Typed cursor over one payload line's whitespace-separated fields,
/// producing located [`ParseError`]s instead of panics.
#[derive(Debug)]
pub struct Fields<'a> {
    line: usize,
    parts: std::str::SplitWhitespace<'a>,
}

impl<'a> Fields<'a> {
    /// Cursor over `content` (already comment-stripped) at `line`.
    pub fn of(line: usize, content: &'a str) -> Self {
        Fields {
            line,
            parts: content.split_whitespace(),
        }
    }

    /// A [`ParseError`] at this line.
    pub fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    /// Next raw token; errors naming the missing field otherwise.
    pub fn token(&mut self, what: &str) -> Result<&'a str, ParseError> {
        self.parts
            .next()
            .ok_or_else(|| self.err(format!("missing {what}")))
    }

    /// Next token parsed as `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, ParseError> {
        let tok = self.token(what)?;
        tok.parse::<u64>()
            .map_err(|e| self.err(format!("bad {what} '{tok}': {e}")))
    }

    /// Next token parsed as `usize`.
    pub fn usize(&mut self, what: &str) -> Result<usize, ParseError> {
        let tok = self.token(what)?;
        tok.parse::<usize>()
            .map_err(|e| self.err(format!("bad {what} '{tok}': {e}")))
    }

    /// Every remaining token parsed as `u64`.
    pub fn rest_u64(self, what: &str) -> Result<Vec<u64>, ParseError> {
        let line = self.line;
        self.parts
            .map(|tok| {
                tok.parse::<u64>().map_err(|e| ParseError {
                    line,
                    message: format!("bad {what} '{tok}': {e}"),
                })
            })
            .collect()
    }

    /// Errors if any token remains (trailing garbage hides typos).
    pub fn finish(&mut self) -> Result<(), ParseError> {
        match self.parts.next() {
            None => Ok(()),
            Some(extra) => Err(self.err(format!("unexpected trailing token '{extra}'"))),
        }
    }
}

/// Full-state snapshot/restore capability, implemented by every scheduler
/// layer (single-machine schedulers, the multi-machine wrapper, the
/// engine).
///
/// The contract: [`Restorable::restore`] of [`Restorable::snapshot_text`]
/// yields an instance that is behaviorally indistinguishable from the
/// original — identical moves, costs, errors, and telemetry on any
/// subsequent request stream. Readers must fail gracefully (no panics) on
/// malformed input.
pub trait Restorable: Sized {
    /// Section kind naming this type's state in the framing.
    const SNAPSHOT_KIND: &'static str;

    /// Writes the full mutable state as payload lines / child sections of
    /// the current section. Output must be deterministic (sorted where
    /// the underlying containers are not).
    fn write_state(&self, w: &mut SnapshotWriter);

    /// Rebuilds an instance from a parsed section of kind
    /// [`Restorable::SNAPSHOT_KIND`], re-deriving every redundant index
    /// and validating structural consistency.
    fn read_state(node: &SnapshotNode) -> Result<Self, ParseError>;

    /// Serializes to a self-contained snapshot document.
    fn snapshot_text(&self) -> String {
        let mut w = SnapshotWriter::new();
        w.begin(Self::SNAPSHOT_KIND);
        self.write_state(&mut w);
        w.end();
        w.finish()
    }

    /// Parses a snapshot document produced by
    /// [`Restorable::snapshot_text`].
    fn restore(text: &str) -> Result<Self, ParseError> {
        let root = SnapshotNode::parse(text)?;
        Self::read_state(root.only_child(Self::SNAPSHOT_KIND)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_round_trip_nesting() {
        let mut w = SnapshotWriter::new();
        w.begin("outer");
        w.line(format_args!("x 1 2"));
        w.begin_args("inner", format_args!("7"));
        w.line(format_args!("y 3"));
        w.end();
        w.end();
        let text = w.finish();
        assert!(text.starts_with(SNAPSHOT_HEADER));

        let root = SnapshotNode::parse(&text).unwrap();
        let outer = root.only_child("outer").unwrap();
        assert_eq!(outer.lines.len(), 1);
        assert_eq!(outer.lines[0].1, "x 1 2");
        let inner = outer.only_child("inner").unwrap();
        assert_eq!(inner.args, vec!["7".to_string()]);
        assert_eq!(inner.lines[0].1, "y 3");
    }

    #[test]
    fn parser_rejects_malformed_framing() {
        // Missing header.
        assert!(SnapshotNode::parse("!begin x\n!end\n").is_err());
        // Wrong version.
        assert!(SnapshotNode::parse("# realloc snapshot v9\n").is_err());
        // Unbalanced begin (truncated document).
        let text = format!("{SNAPSHOT_HEADER}\n!begin x\n");
        let e = SnapshotNode::parse(&text).unwrap_err();
        assert!(e.message.contains("truncated"), "{e}");
        // Stray end.
        let text = format!("{SNAPSHOT_HEADER}\n!end\n");
        assert!(SnapshotNode::parse(&text).is_err());
        // Unknown directive.
        let text = format!("{SNAPSHOT_HEADER}\n!frobnicate\n");
        assert!(SnapshotNode::parse(&text).is_err());
        // Begin without a kind.
        let text = format!("{SNAPSHOT_HEADER}\n!begin\n!end\n");
        assert!(SnapshotNode::parse(&text).is_err());
    }

    #[test]
    fn fields_cursor_locates_errors() {
        let mut f = Fields::of(42, "j 17 xyz");
        assert_eq!(f.token("op").unwrap(), "j");
        assert_eq!(f.u64("id").unwrap(), 17);
        let e = f.u64("slot").unwrap_err();
        assert_eq!(e.line, 42);
        assert!(e.message.contains("slot"), "{e}");

        let mut f = Fields::of(7, "a b");
        let e = f.finish().unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");

        let f = Fields::of(1, "1 2 3");
        assert_eq!(f.rest_u64("slot").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn comments_and_blanks_ignored_inside_sections() {
        let text = format!("{SNAPSHOT_HEADER}\n!begin s\n\n# note\nx 1 # inline\n!end\n");
        let root = SnapshotNode::parse(&text).unwrap();
        let s = root.only_child("s").unwrap();
        assert_eq!(s.lines.len(), 1);
        assert_eq!(s.lines[0].1, "x 1");
    }

    #[test]
    fn only_child_rejects_ambiguity() {
        let text = format!("{SNAPSHOT_HEADER}\n!begin s\n!end\n!begin s\n!end\n");
        let root = SnapshotNode::parse(&text).unwrap();
        assert!(root.only_child("s").is_err());
        assert_eq!(root.children_of("s").count(), 2);
        assert!(root.only_child("missing").is_err());
    }
}
