//! The job model of paper §2.

use crate::window::Window;
use std::fmt;

/// Opaque job identifier supplied by the request stream
/// (`⟨INSERTJOB, name, arrival, deadline⟩` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl From<u64> for JobId {
    fn from(v: u64) -> Self {
        JobId(v)
    }
}

/// A job: a unit of work that must receive one timeslot inside its window.
///
/// `size` is 1 for everything in the paper's main construction; the field
/// exists for the Observation 13 experiments (jobs of size `k > 1`), which
/// only the sized baselines consume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Job {
    /// Identifier from the request stream.
    pub id: JobId,
    /// The slots in which the job may be scheduled.
    pub window: Window,
    /// Processing time in slots (1 in the paper's main model).
    pub size: u64,
}

impl Job {
    /// A unit-size job (the paper's model).
    pub fn unit(id: impl Into<JobId>, window: Window) -> Self {
        Job {
            id: id.into(),
            window,
            size: 1,
        }
    }

    /// A job of integer size `size ≥ 1` (Observation 13 experiments only).
    pub fn sized(id: impl Into<JobId>, window: Window, size: u64) -> Self {
        assert!(size >= 1, "job size must be at least 1");
        Job {
            id: id.into(),
            window,
            size,
        }
    }

    /// Shorthand for the window's span.
    pub fn span(&self) -> u64 {
        self.window.span()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_job_has_size_one() {
        let j = Job::unit(7, Window::new(0, 4));
        assert_eq!(j.id, JobId(7));
        assert_eq!(j.size, 1);
        assert_eq!(j.span(), 4);
    }

    #[test]
    #[should_panic]
    fn zero_size_rejected() {
        let _ = Job::sized(1, Window::new(0, 4), 0);
    }

    #[test]
    fn job_id_display() {
        assert_eq!(format!("{}", JobId(3)), "j3");
        assert_eq!(format!("{:?}", JobId(3)), "j3");
    }
}
