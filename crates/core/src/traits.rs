//! Scheduler interfaces.
//!
//! Two layers, mirroring the paper's reduction structure:
//!
//! * [`SingleMachineReallocator`] — a single-machine scheduler for
//!   **aligned** windows (paper §4). Both the reservation scheduler and the
//!   naive Lemma 4 baseline implement this, so the §3/§5 wrappers and all
//!   harnesses are generic over the backend.
//! * [`Reallocator`] — a full `m`-machine scheduler for arbitrary windows
//!   (what Theorem 1 delivers, and what the EDF/LLF baselines emulate).

use crate::cost::{RequestOutcome, SlotMove};
use crate::error::Error;
use crate::job::JobId;
use crate::schedule::ScheduleSnapshot;
use crate::window::Window;
use crate::Slot;

/// A single-machine scheduler for aligned windows.
///
/// Implementations must keep a feasible single-machine schedule of all
/// active jobs at all times and report every slot change they perform.
pub trait SingleMachineReallocator {
    /// Inserts a job with an **aligned** window, returning all slot moves
    /// performed (the new job's initial placement is a move with
    /// `from = None`).
    fn insert(&mut self, id: JobId, window: Window) -> Result<Vec<SlotMove>, Error>;

    /// Deletes an active job, returning all slot moves performed (the
    /// deleted job's removal is a move with `to = None`).
    fn delete(&mut self, id: JobId) -> Result<Vec<SlotMove>, Error>;

    /// Current slot of an active job.
    fn slot_of(&self, id: JobId) -> Option<Slot>;

    /// Current `(job, slot)` assignments.
    fn assignments(&self) -> Vec<(JobId, Slot)>;

    /// Number of active jobs.
    fn active_count(&self) -> usize;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str {
        "single-machine"
    }
}

/// A full reallocating scheduler: `m` machines, arbitrary windows.
pub trait Reallocator {
    /// Number of machines.
    fn machines(&self) -> usize;

    /// Services `⟨INSERTJOB, id, window⟩`.
    fn insert(&mut self, id: JobId, window: Window) -> Result<RequestOutcome, Error>;

    /// Services `⟨DELETEJOB, id⟩`.
    fn delete(&mut self, id: JobId) -> Result<RequestOutcome, Error>;

    /// Snapshot of the current schedule.
    fn snapshot(&self) -> ScheduleSnapshot;

    /// Number of active jobs.
    fn active_count(&self) -> usize;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str {
        "reallocator"
    }

    /// Services a request.
    fn request(&mut self, r: crate::request::Request) -> Result<RequestOutcome, Error> {
        match r {
            crate::request::Request::Insert { id, window } => self.insert(id, window),
            crate::request::Request::Delete { id } => self.delete(id),
        }
    }
}
