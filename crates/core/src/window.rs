//! Job windows, spans, and the alignment machinery of paper §2 and §5.
//!
//! A window `W = [start, end]` is the set of slots `start..end`; its *span*
//! is `end − start` (the paper writes `|W| = d_j − a_j`). A window is
//! *aligned* if its span is a power of two and its start is a multiple of its
//! span. A set of aligned windows is laminar: any two are disjoint or nested.
//!
//! `ALIGNED(W)` (paper §5) is a largest aligned window contained in `W`; it
//! always has span `≥ |W|/4`, which is what makes the unaligned→aligned
//! reduction lose only a constant factor of underallocation (Lemma 10).

use crate::{Slot, Time};
use std::fmt;
use std::ops::Range;

/// A half-open window of timeslots `[start, end)` in slot terms.
///
/// Constructed from the paper's inclusive endpoint pair `[a_j, d_j]` with
/// `d_j > a_j`: the job must occupy one of the slots `a_j, …, d_j − 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Window {
    start: Time,
    end: Time,
}

impl fmt::Debug for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl Window {
    /// Creates the window of slots `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start` (a job needs at least one slot).
    pub fn new(start: Time, end: Time) -> Self {
        assert!(end > start, "window [{start}, {end}) is empty");
        Window { start, end }
    }

    /// The window containing exactly the slots `start .. start + span`.
    pub fn with_span(start: Time, span: u64) -> Self {
        assert!(span > 0, "window span must be positive");
        Window {
            start,
            end: start
                .checked_add(span)
                .expect("window end overflows the time axis"),
        }
    }

    /// First slot of the window (the paper's arrival time `a_j`).
    pub fn start(&self) -> Time {
        self.start
    }

    /// One past the last slot (the paper's deadline `d_j`).
    pub fn end(&self) -> Time {
        self.end
    }

    /// Number of slots in the window — the paper's span `|W| = d_j − a_j`.
    pub fn span(&self) -> u64 {
        self.end - self.start
    }

    /// Iterator over the slots of the window.
    pub fn slots(&self) -> Range<Slot> {
        self.start..self.end
    }

    /// Does this window contain slot `s`?
    pub fn contains_slot(&self, s: Slot) -> bool {
        self.start <= s && s < self.end
    }

    /// Is `other` fully contained in `self`?
    pub fn contains(&self, other: &Window) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Do the two windows share at least one slot?
    pub fn overlaps(&self, other: &Window) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Alignment predicate of paper §2: span is `2^i` and start is a
    /// multiple of `2^i`.
    pub fn is_aligned(&self) -> bool {
        let span = self.span();
        span.is_power_of_two() && self.start.is_multiple_of(span)
    }

    /// `ALIGNED(W)`: the *leftmost largest* aligned window contained in `W`
    /// (paper §5). Guaranteed to have span `≥ |W|/4`.
    ///
    /// The paper allows an arbitrary choice among largest aligned
    /// subwindows; we deterministically pick the leftmost so that the
    /// reduction (and therefore every downstream placement) is reproducible.
    pub fn aligned_subwindow(&self) -> Window {
        // Largest i such that some multiple t·2^i has [t·2^i, (t+1)·2^i) ⊆ W.
        let max_i = 63 - self.span().leading_zeros(); // floor(log2(span))
        for i in (0..=max_i).rev() {
            let p = 1u64 << i;
            // Smallest multiple of p that is >= start. start+p-1 cannot
            // overflow in practice because p <= span <= end - start and
            // Window::new checked end's validity; still use checked math.
            let t = match self.start.checked_add(p - 1) {
                Some(v) => (v / p) * p,
                None => continue,
            };
            if let Some(e) = t.checked_add(p) {
                if e <= self.end {
                    return Window { start: t, end: e };
                }
            }
        }
        // i = 0 always succeeds: any single slot is aligned.
        unreachable!("a window always contains an aligned span-1 window")
    }

    /// The aligned window of span `span` (a power of two) containing slot `s`.
    pub fn aligned_enclosing(s: Slot, span: u64) -> Window {
        debug_assert!(span.is_power_of_two());
        let start = s - (s % span);
        Window {
            start,
            end: start + span,
        }
    }

    /// For an aligned window, the aligned parent of twice the span.
    /// Returns `None` if the parent would overflow the time axis.
    pub fn aligned_parent(&self) -> Option<Window> {
        debug_assert!(self.is_aligned());
        let span = self.span().checked_mul(2)?;
        let start = self.start - (self.start % span);
        let end = start.checked_add(span)?;
        Some(Window { start, end })
    }

    /// Trims an **aligned** window to span at most `max_span` (a power of
    /// two), keeping the leftmost aligned subwindow. Used by the `n*`
    /// trimming rule of paper §4 ("Trimming Windows to n").
    pub fn trim_to(&self, max_span: u64) -> Window {
        debug_assert!(self.is_aligned());
        debug_assert!(max_span.is_power_of_two());
        if self.span() <= max_span {
            *self
        } else {
            // start is a multiple of span > max_span, hence of max_span.
            Window {
                start: self.start,
                end: self.start + max_span,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_counts_slots() {
        let w = Window::new(3, 7);
        assert_eq!(w.span(), 4);
        assert_eq!(w.slots().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
        assert!(w.contains_slot(3));
        assert!(w.contains_slot(6));
        assert!(!w.contains_slot(7));
    }

    #[test]
    #[should_panic]
    fn empty_window_rejected() {
        let _ = Window::new(5, 5);
    }

    #[test]
    fn alignment_predicate() {
        assert!(Window::new(0, 8).is_aligned());
        assert!(Window::new(8, 16).is_aligned());
        assert!(Window::new(4, 8).is_aligned());
        assert!(Window::new(5, 6).is_aligned()); // span 1, any start
        assert!(!Window::new(4, 12).is_aligned()); // span 8, start 4
        assert!(!Window::new(0, 6).is_aligned()); // span 6 not a power of 2
    }

    #[test]
    fn aligned_windows_are_laminar() {
        // Two aligned windows are equal, disjoint, or nested (paper §2).
        let spans = [1u64, 2, 4, 8, 16];
        let mut windows = vec![];
        for &sp in &spans {
            for start in (0..32).step_by(sp as usize) {
                windows.push(Window::with_span(start, sp));
            }
        }
        for a in &windows {
            for b in &windows {
                let laminar = !a.overlaps(b) || a.contains(b) || b.contains(a);
                assert!(laminar, "{a:?} vs {b:?} not laminar");
            }
        }
    }

    #[test]
    fn aligned_subwindow_is_aligned_and_large() {
        for start in 0..40u64 {
            for span in 1..50u64 {
                let w = Window::with_span(start, span);
                let a = w.aligned_subwindow();
                assert!(a.is_aligned(), "{w:?} -> {a:?}");
                assert!(w.contains(&a), "{w:?} -> {a:?}");
                // Paper §5: |ALIGNED(W)| >= |W|/4.
                assert!(
                    a.span() * 4 >= w.span(),
                    "{w:?} -> {a:?}: span {} < {}/4",
                    a.span(),
                    w.span()
                );
            }
        }
    }

    #[test]
    fn aligned_subwindow_of_aligned_is_identity() {
        for i in 0..10u32 {
            let w = Window::with_span(3 << i, 1 << i);
            if w.is_aligned() {
                assert_eq!(w.aligned_subwindow(), w);
            }
        }
        let w = Window::new(0, 16);
        assert_eq!(w.aligned_subwindow(), w);
    }

    #[test]
    fn aligned_subwindow_leftmost() {
        // [1, 9) has span 8; the largest aligned subwindows are [2,4), [4,6),
        // [4, 8), etc. The largest possible span is 4 -> [4, 8).
        let w = Window::new(1, 9);
        let a = w.aligned_subwindow();
        assert_eq!(a, Window::new(4, 8));
    }

    #[test]
    fn aligned_enclosing_and_parent() {
        let w = Window::aligned_enclosing(13, 8);
        assert_eq!(w, Window::new(8, 16));
        assert_eq!(w.aligned_parent(), Some(Window::new(0, 16)));
        assert_eq!(
            Window::new(16, 32).aligned_parent(),
            Some(Window::new(0, 32))
        );
    }

    #[test]
    fn trim_keeps_left() {
        let w = Window::new(32, 64); // aligned, span 32
        assert_eq!(w.trim_to(8), Window::new(32, 40));
        assert_eq!(w.trim_to(32), w);
        assert_eq!(w.trim_to(64), w);
    }

    #[test]
    fn trim_result_is_aligned() {
        for i in 0..6u32 {
            for k in 0..8u64 {
                let w = Window::with_span(k << 6, 1 << 6);
                let t = w.trim_to(1 << i);
                assert!(t.is_aligned());
                assert!(w.contains(&t));
                assert_eq!(t.span(), 1 << i);
            }
        }
    }
}
