//! Reallocation and migration cost accounting (paper §2).
//!
//! > *"We define the migration cost of a request `rᵢ` to be the number of
//! > jobs whose machine changes when `rᵢ` is processed. We define the
//! > reallocation cost of a request `rᵢ` to be the number of jobs that must
//! > be rescheduled when `rᵢ` is processed."*
//!
//! Every scheduler operation returns the exact set of placement changes it
//! performed ([`RequestOutcome`]); the costs are *derived* from those moves
//! rather than self-reported, so a buggy scheduler cannot under-count.
//! The initial placement of a freshly inserted job and the removal of a
//! deleted job are recorded as moves but do **not** count as reallocations:
//! only previously scheduled jobs that end up elsewhere do.

use crate::job::JobId;
use crate::Slot;

/// A position in the global schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Placement {
    /// Machine index in `0..m`.
    pub machine: usize,
    /// Timeslot on that machine.
    pub slot: Slot,
}

/// A placement change of one job on the multi-machine schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Move {
    /// The job that moved.
    pub job: JobId,
    /// Previous placement; `None` when the job is freshly inserted.
    pub from: Option<Placement>,
    /// New placement; `None` when the job is being deleted.
    pub to: Option<Placement>,
}

impl Move {
    /// A *reallocation* in the paper's sense: an already-scheduled job whose
    /// placement changed (same-machine slot changes count too).
    pub fn is_reallocation(&self) -> bool {
        match (self.from, self.to) {
            (Some(f), Some(t)) => f != t,
            _ => false,
        }
    }

    /// A *migration*: an already-scheduled job whose machine changed.
    pub fn is_migration(&self) -> bool {
        match (self.from, self.to) {
            (Some(f), Some(t)) => f.machine != t.machine,
            _ => false,
        }
    }
}

/// A placement change on a single machine (used by the single-machine
/// scheduler layer, where there is no machine coordinate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotMove {
    /// The job that moved.
    pub job: JobId,
    /// Previous slot; `None` when freshly inserted.
    pub from: Option<Slot>,
    /// New slot; `None` when deleted.
    pub to: Option<Slot>,
}

impl SlotMove {
    /// An already-scheduled job whose slot changed.
    pub fn is_reallocation(&self) -> bool {
        matches!((self.from, self.to), (Some(f), Some(t)) if f != t)
    }

    /// Lifts the slot move onto machine `machine`.
    pub fn on_machine(self, machine: usize) -> Move {
        Move {
            job: self.job,
            from: self.from.map(|slot| Placement { machine, slot }),
            to: self.to.map(|slot| Placement { machine, slot }),
        }
    }
}

/// The full effect of servicing one request.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Every placement change performed, in execution order.
    pub moves: Vec<Move>,
}

impl RequestOutcome {
    /// Outcome with no moves.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Paper §2 reallocation cost of this request.
    pub fn reallocation_cost(&self) -> u64 {
        self.moves.iter().filter(|m| m.is_reallocation()).count() as u64
    }

    /// Paper §2 migration cost of this request.
    pub fn migration_cost(&self) -> u64 {
        self.moves.iter().filter(|m| m.is_migration()).count() as u64
    }

    /// Appends a move.
    pub fn push(&mut self, m: Move) {
        self.moves.push(m);
    }

    /// Merges another outcome into this one (e.g. the two halves of a
    /// delete-then-migrate rebalance).
    pub fn absorb(&mut self, other: RequestOutcome) {
        self.moves.extend(other.moves);
    }

    /// Collapses repeated moves of the same job into one net move so that a
    /// job shuffled through several temporary slots is charged once, as the
    /// paper counts "the number of jobs that must be rescheduled".
    ///
    /// Moves are netted per job: the first `from` and the last `to` survive.
    pub fn netted(&self) -> RequestOutcome {
        // This runs once per serviced request on the engine's ingest
        // path, and Theorem 1 keeps per-request move lists tiny
        // (`O(min{log* n, log* Δ})`), so a backwards linear scan beats
        // building a hash map. The map path covers pathological lists
        // (EDF/LLF full recomputes, rebuilds).
        if self.moves.len() <= 32 {
            let mut net: Vec<Move> = Vec::with_capacity(self.moves.len());
            for m in &self.moves {
                match net.iter_mut().rfind(|acc| acc.job == m.job) {
                    None => net.push(*m),
                    Some(acc) => acc.to = m.to,
                }
            }
            net.retain(|m| m.from.is_some() || m.to.is_some());
            return RequestOutcome { moves: net };
        }
        let mut order: Vec<JobId> = Vec::new();
        let mut net: fxhash::FxHashMap<JobId, Move> = fxhash::FxHashMap::default();
        for m in &self.moves {
            match net.get_mut(&m.job) {
                None => {
                    order.push(m.job);
                    net.insert(m.job, *m);
                }
                Some(acc) => {
                    acc.to = m.to;
                }
            }
        }
        RequestOutcome {
            moves: order
                .into_iter()
                .map(|id| net[&id])
                .filter(|m| m.from.is_some() || m.to.is_some())
                .collect(),
        }
    }
}

/// Per-request cost record kept by [`CostMeter`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostSample {
    /// Reallocation cost of the request.
    pub reallocations: u64,
    /// Migration cost of the request.
    pub migrations: u64,
    /// Number of active jobs after the request (the paper's `nᵢ`).
    pub active_jobs: u64,
    /// Largest active window span after the request (the paper's `Δᵢ`).
    pub max_span: u64,
}

/// Accumulates per-request costs over an execution and summarizes them.
#[derive(Clone, Debug, Default)]
pub struct CostMeter {
    samples: Vec<CostSample>,
    total_reallocations: u64,
    total_migrations: u64,
}

impl CostMeter {
    /// New, empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the outcome of one request. The outcome is netted first.
    pub fn record(&mut self, outcome: &RequestOutcome, active_jobs: u64, max_span: u64) {
        let netted = outcome.netted();
        let sample = CostSample {
            reallocations: netted.reallocation_cost(),
            migrations: netted.migration_cost(),
            active_jobs,
            max_span,
        };
        self.total_reallocations += sample.reallocations;
        self.total_migrations += sample.migrations;
        self.samples.push(sample);
    }

    /// All recorded samples.
    pub fn samples(&self) -> &[CostSample] {
        &self.samples
    }

    /// Total reallocations over all recorded requests.
    pub fn total_reallocations(&self) -> u64 {
        self.total_reallocations
    }

    /// Total migrations over all recorded requests.
    pub fn total_migrations(&self) -> u64 {
        self.total_migrations
    }

    /// Number of requests recorded.
    pub fn requests(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Mean reallocations per request.
    pub fn mean_reallocations(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.total_reallocations as f64 / self.samples.len() as f64
        }
    }

    /// Largest per-request reallocation cost.
    pub fn max_reallocations(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.reallocations)
            .max()
            .unwrap_or(0)
    }

    /// Largest per-request migration cost.
    pub fn max_migrations(&self) -> u64 {
        self.samples.iter().map(|s| s.migrations).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(machine: usize, slot: Slot) -> Placement {
        Placement { machine, slot }
    }

    #[test]
    fn move_classification() {
        let fresh = Move {
            job: JobId(1),
            from: None,
            to: Some(p(0, 3)),
        };
        assert!(!fresh.is_reallocation());
        assert!(!fresh.is_migration());

        let slot_change = Move {
            job: JobId(1),
            from: Some(p(0, 3)),
            to: Some(p(0, 5)),
        };
        assert!(slot_change.is_reallocation());
        assert!(!slot_change.is_migration());

        let machine_change = Move {
            job: JobId(1),
            from: Some(p(0, 3)),
            to: Some(p(1, 3)),
        };
        assert!(machine_change.is_reallocation());
        assert!(machine_change.is_migration());

        let removal = Move {
            job: JobId(1),
            from: Some(p(0, 3)),
            to: None,
        };
        assert!(!removal.is_reallocation());
        assert!(!removal.is_migration());
    }

    #[test]
    fn outcome_costs() {
        let mut o = RequestOutcome::empty();
        o.push(Move {
            job: JobId(1),
            from: None,
            to: Some(p(0, 0)),
        });
        o.push(Move {
            job: JobId(2),
            from: Some(p(0, 0)),
            to: Some(p(0, 1)),
        });
        o.push(Move {
            job: JobId(3),
            from: Some(p(0, 1)),
            to: Some(p(1, 1)),
        });
        assert_eq!(o.reallocation_cost(), 2);
        assert_eq!(o.migration_cost(), 1);
    }

    #[test]
    fn netting_collapses_chains() {
        // Job 2 moves 0->1 then 1->2: counts once, net 0->2.
        let mut o = RequestOutcome::empty();
        o.push(Move {
            job: JobId(2),
            from: Some(p(0, 0)),
            to: Some(p(0, 1)),
        });
        o.push(Move {
            job: JobId(2),
            from: Some(p(0, 1)),
            to: Some(p(0, 2)),
        });
        let n = o.netted();
        assert_eq!(n.moves.len(), 1);
        assert_eq!(n.moves[0].from, Some(p(0, 0)));
        assert_eq!(n.moves[0].to, Some(p(0, 2)));
        assert_eq!(n.reallocation_cost(), 1);
    }

    #[test]
    fn netting_cancels_round_trips() {
        // A job moved away and back nets to no reallocation.
        let mut o = RequestOutcome::empty();
        o.push(Move {
            job: JobId(2),
            from: Some(p(0, 0)),
            to: Some(p(0, 1)),
        });
        o.push(Move {
            job: JobId(2),
            from: Some(p(0, 1)),
            to: Some(p(0, 0)),
        });
        assert_eq!(o.netted().reallocation_cost(), 0);
    }

    #[test]
    fn meter_accumulates() {
        let mut meter = CostMeter::new();
        let mut o = RequestOutcome::empty();
        o.push(Move {
            job: JobId(2),
            from: Some(p(0, 0)),
            to: Some(p(1, 1)),
        });
        meter.record(&o, 5, 16);
        meter.record(&RequestOutcome::empty(), 6, 16);
        assert_eq!(meter.requests(), 2);
        assert_eq!(meter.total_reallocations(), 1);
        assert_eq!(meter.total_migrations(), 1);
        assert_eq!(meter.max_reallocations(), 1);
        assert!((meter.mean_reallocations() - 0.5).abs() < 1e-12);
    }
}
