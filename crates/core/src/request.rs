//! On-line request sequences (paper §2).
//!
//! An execution is a sequence of `⟨INSERTJOB, name, arrival, deadline⟩` and
//! `⟨DELETEJOB, name⟩` requests; after each request the scheduler must
//! expose a feasible schedule of the *active* jobs (inserted, not yet
//! deleted).

use crate::job::JobId;
use crate::window::Window;
use std::collections::BTreeMap;

/// A single scheduling request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// `⟨INSERTJOB, id, window⟩`.
    Insert {
        /// Job identifier; must not collide with an active job.
        id: JobId,
        /// Window of admissible slots.
        window: Window,
    },
    /// `⟨DELETEJOB, id⟩`.
    Delete {
        /// Identifier of an active job.
        id: JobId,
    },
}

impl Request {
    /// The job the request concerns.
    pub fn job_id(&self) -> JobId {
        match *self {
            Request::Insert { id, .. } | Request::Delete { id } => id,
        }
    }

    /// `true` for inserts.
    pub fn is_insert(&self) -> bool {
        matches!(self, Request::Insert { .. })
    }
}

/// A well-formedness report for a request sequence (see
/// [`RequestSeq::validate`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeqError {
    /// An insert reused the id of a still-active job.
    DuplicateInsert(JobId),
    /// A delete named a job that is not active.
    UnknownDelete(JobId),
}

/// An owned request sequence with bookkeeping helpers used by generators,
/// the simulator and the tests.
#[derive(Clone, Debug, Default)]
pub struct RequestSeq {
    requests: Vec<Request>,
}

impl RequestSeq {
    /// An empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing request vector.
    pub fn from_vec(requests: Vec<Request>) -> Self {
        RequestSeq { requests }
    }

    /// Appends an insert request.
    pub fn insert(&mut self, id: impl Into<JobId>, window: Window) -> &mut Self {
        self.requests.push(Request::Insert {
            id: id.into(),
            window,
        });
        self
    }

    /// Appends a delete request.
    pub fn delete(&mut self, id: impl Into<JobId>) -> &mut Self {
        self.requests.push(Request::Delete { id: id.into() });
        self
    }

    /// Appends a request.
    pub fn push(&mut self, r: Request) -> &mut Self {
        self.requests.push(r);
        self
    }

    /// The requests in order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` when there are no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterates over the requests.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.requests.iter()
    }

    /// Checks inserts/deletes pair up: no duplicate active ids, no deletes
    /// of inactive jobs.
    pub fn validate(&self) -> Result<(), SeqError> {
        let mut active: BTreeMap<JobId, Window> = BTreeMap::new();
        for r in &self.requests {
            match *r {
                Request::Insert { id, window } => {
                    if active.insert(id, window).is_some() {
                        return Err(SeqError::DuplicateInsert(id));
                    }
                }
                Request::Delete { id } => {
                    if active.remove(&id).is_none() {
                        return Err(SeqError::UnknownDelete(id));
                    }
                }
            }
        }
        Ok(())
    }

    /// The largest number of simultaneously active jobs over the sequence.
    pub fn peak_active(&self) -> usize {
        let mut active = 0usize;
        let mut peak = 0usize;
        for r in &self.requests {
            match r {
                Request::Insert { .. } => {
                    active += 1;
                    peak = peak.max(active);
                }
                Request::Delete { .. } => active = active.saturating_sub(1),
            }
        }
        peak
    }

    /// The largest window span appearing in any insert (the paper's `Δ`).
    pub fn max_span(&self) -> u64 {
        self.requests
            .iter()
            .filter_map(|r| match r {
                Request::Insert { window, .. } => Some(window.span()),
                Request::Delete { .. } => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Replays the sequence, yielding after each request the map of active
    /// jobs. Useful for validation harnesses.
    pub fn active_after_each(&self) -> Vec<BTreeMap<JobId, Window>> {
        let mut active: BTreeMap<JobId, Window> = BTreeMap::new();
        let mut out = Vec::with_capacity(self.requests.len());
        for r in &self.requests {
            match *r {
                Request::Insert { id, window } => {
                    active.insert(id, window);
                }
                Request::Delete { id } => {
                    active.remove(&id);
                }
            }
            out.push(active.clone());
        }
        out
    }

    /// Concatenates another sequence onto this one.
    pub fn extend(&mut self, other: RequestSeq) -> &mut Self {
        self.requests.extend(other.requests);
        self
    }
}

impl IntoIterator for RequestSeq {
    type Item = Request;
    type IntoIter = std::vec::IntoIter<Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.into_iter()
    }
}

impl FromIterator<Request> for RequestSeq {
    fn from_iter<T: IntoIterator<Item = Request>>(iter: T) -> Self {
        RequestSeq {
            requests: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate() {
        let mut s = RequestSeq::new();
        s.insert(1, Window::new(0, 4))
            .insert(2, Window::new(0, 8))
            .delete(1)
            .insert(1, Window::new(4, 8));
        assert_eq!(s.len(), 4);
        assert!(s.validate().is_ok());
        assert_eq!(s.peak_active(), 2);
        assert_eq!(s.max_span(), 8);
    }

    #[test]
    fn duplicate_insert_detected() {
        let mut s = RequestSeq::new();
        s.insert(1, Window::new(0, 4)).insert(1, Window::new(0, 8));
        assert_eq!(s.validate(), Err(SeqError::DuplicateInsert(JobId(1))));
    }

    #[test]
    fn unknown_delete_detected() {
        let mut s = RequestSeq::new();
        s.delete(9);
        assert_eq!(s.validate(), Err(SeqError::UnknownDelete(JobId(9))));
    }

    #[test]
    fn active_after_each_tracks_state() {
        let mut s = RequestSeq::new();
        s.insert(1, Window::new(0, 2)).delete(1);
        let states = s.active_after_each();
        assert_eq!(states[0].len(), 1);
        assert_eq!(states[1].len(), 0);
    }
}
