//! A line-oriented text format for request sequences, so workloads can be
//! saved, shared and replayed reproducibly (`realloc-cli` consumes it).
//!
//! Format — one request per line, `#` comments and blank lines ignored:
//!
//! ```text
//! # id arrival deadline
//! + 17 4 12      # INSERTJOB  j17, window [4, 12)
//! - 17           # DELETEJOB  j17
//! ```

use crate::job::JobId;
use crate::request::{Request, RequestSeq};
use crate::window::Window;
use std::fmt::Write as _;

/// A parse failure, with the offending line number (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// The shared line discipline of every text format in this workspace:
/// the content of one raw line with any `#` comment stripped and
/// surrounding whitespace trimmed (empty ⇒ the line carries nothing).
pub fn line_content(raw: &str) -> &str {
    raw.split('#').next().unwrap_or("").trim()
}

/// Serializes a request sequence to the text format.
pub fn to_text(seq: &RequestSeq) -> String {
    let mut out = String::with_capacity(seq.len() * 16);
    out.push_str("# realloc-sched request sequence: '+ id arrival deadline' / '- id'\n");
    for r in seq.iter() {
        match *r {
            Request::Insert { id, window } => {
                writeln!(out, "+ {} {} {}", id.0, window.start(), window.end()).unwrap();
            }
            Request::Delete { id } => {
                writeln!(out, "- {}", id.0).unwrap();
            }
        }
    }
    out
}

/// Parses the text format back into a request sequence.
pub fn from_text(text: &str) -> Result<RequestSeq, ParseError> {
    let mut seq = RequestSeq::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = line_content(raw);
        if content.is_empty() {
            continue;
        }
        let mut parts = content.split_whitespace();
        let op = parts.next().expect("non-empty line has a token");
        let err = |message: String| ParseError { line, message };
        let mut num = |what: &str| -> Result<u64, ParseError> {
            parts
                .next()
                .ok_or_else(|| err(format!("missing {what}")))?
                .parse::<u64>()
                .map_err(|e| err(format!("bad {what}: {e}")))
        };
        match op {
            "+" => {
                let id = num("id")?;
                let arrival = num("arrival")?;
                let deadline = num("deadline")?;
                if deadline <= arrival {
                    return Err(err(format!(
                        "deadline {deadline} must exceed arrival {arrival}"
                    )));
                }
                seq.push(Request::Insert {
                    id: JobId(id),
                    window: Window::new(arrival, deadline),
                });
            }
            "-" => {
                let id = num("id")?;
                seq.push(Request::Delete { id: JobId(id) });
            }
            other => {
                return Err(err(format!("unknown op '{other}' (expected '+' or '-')")));
            }
        }
        // Trailing garbage is an error — silently ignoring it hides typos.
        if let Some(extra) = parts.next() {
            return Err(ParseError {
                line,
                message: format!("unexpected trailing token '{extra}'"),
            });
        }
    }
    Ok(seq)
}

/// Writes one length-prefixed frame — a `u32` big-endian byte count
/// followed by the payload bytes — to `w`. The framing primitive of the
/// cluster layer's TCP transport: the text protocols in this workspace
/// are line-oriented, and a length prefix lets a stream reader recover
/// whole documents (multi-line frames, embedded snapshots) without
/// in-band escaping.
pub fn write_frame<W: std::io::Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds the u32 length prefix",
                payload.len()
            ),
        )
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame written by [`write_frame`]. Returns
/// `Ok(None)` on a clean end-of-stream (EOF at a frame boundary); EOF in
/// the middle of a frame, or a declared length above `max_len` (a
/// corrupted or hostile prefix would otherwise drive an unbounded
/// allocation), is an error.
pub fn read_frame<R: std::io::Read>(r: &mut R, max_len: u32) -> std::io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match r.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(prefix);
    if len > max_len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame declares {len} bytes, above the {max_len}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_io_round_trips_and_rejects_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world, multi\nline").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, 1 << 20).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(
            read_frame(&mut r, 1 << 20).unwrap().as_deref(),
            Some(&b""[..])
        );
        assert_eq!(
            read_frame(&mut r, 1 << 20).unwrap().as_deref(),
            Some(&b"world, multi\nline"[..])
        );
        assert_eq!(read_frame(&mut r, 1 << 20).unwrap(), None);

        // Oversized declared length is an error, not an allocation.
        let mut r = &[0xFFu8, 0xFF, 0xFF, 0xFF, 0][..];
        assert!(read_frame(&mut r, 1 << 20).is_err());
        // EOF mid-frame is an error, not a silent truncation.
        let mut partial = Vec::new();
        write_frame(&mut partial, b"full payload").unwrap();
        partial.truncate(7);
        let mut r = &partial[..];
        assert!(read_frame(&mut r, 1 << 20).is_err());
    }

    #[test]
    fn round_trip() {
        let mut seq = RequestSeq::new();
        seq.insert(1, Window::new(0, 8))
            .insert(2, Window::new(3, 5))
            .delete(1)
            .insert(3, Window::new(100, 1 << 40));
        let text = to_text(&seq);
        let back = from_text(&text).unwrap();
        assert_eq!(back.requests(), seq.requests());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# header\n+ 1 0 4  # inline comment\n\n- 1\n";
        let seq = from_text(text).unwrap();
        assert_eq!(seq.len(), 2);
        seq.validate().unwrap();
    }

    #[test]
    fn bad_lines_are_located() {
        for (text, line) in [
            ("+ 1 0", 1),
            ("\n* 1 0 4", 2),
            ("+ 1 4 4", 1),
            ("+ 1 0 4 9", 1),
            ("- x", 1),
        ] {
            let e = from_text(text).unwrap_err();
            assert_eq!(e.line, line, "input {text:?}");
        }
    }

    #[test]
    fn empty_input_is_empty_sequence() {
        assert!(from_text("").unwrap().is_empty());
        assert!(from_text("# only comments\n").unwrap().is_empty());
    }
}
