//! Offline feasibility and `γ`-underallocation checks (paper §2).
//!
//! * [`edf_schedule`] / [`edf_feasible`] — exact feasibility for unit jobs
//!   with integer windows on `m` identical machines. For unit jobs,
//!   earliest-deadline-first at each integer slot is an exact algorithm
//!   (Jackson's rule / Hall's theorem for interval bipartite matching).
//! * [`gamma_underallocated_blocked`] — *sufficient* check that a job set is
//!   `γ`-underallocated: schedules the `γ`-times-inflated jobs restricted to
//!   start at multiples of `γ`, which is exactly the restriction used in the
//!   paper's inductive arguments (proofs of Lemma 3 and Lemma 10).
//! * [`gamma_feasible_preemptive`] — *necessary* check: the preemptive-flow
//!   density condition `γ·|{j : a ≤ a_j, d_j ≤ d}| ≤ m(d−a)` over all
//!   critical interval pairs.
//! * [`aligned_density_max_gamma`] — Lemma 2's laminar density: the largest
//!   `γ` such that every aligned window `W` contains at most `m|W|/γ` jobs
//!   (exact and cheap for recursively aligned sets).

use crate::cost::Placement;
use crate::job::Job;
use crate::schedule::ScheduleSnapshot;
use crate::window::Window;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Greedy EDF schedule for unit jobs on `machines` machines; `None` when the
/// instance is infeasible. Exact for unit jobs with integer windows.
///
/// Runs in `O(n log n)` time; the time axis is traversed sparsely (empty
/// stretches are skipped), so window magnitudes do not matter.
///
/// # Panics
///
/// Panics if any job has `size != 1`; use the sized baselines for
/// Observation 13 instances.
pub fn edf_schedule(jobs: &[Job], machines: usize) -> Option<ScheduleSnapshot> {
    assert!(machines >= 1, "need at least one machine");
    for j in jobs {
        assert_eq!(j.size, 1, "edf_schedule handles unit jobs only");
    }
    let mut by_arrival: Vec<&Job> = jobs.iter().collect();
    by_arrival.sort_by_key(|j| j.window.start());

    // Min-heap on deadline (end of window).
    let mut ready: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new(); // (deadline, id)
    let mut id_to_job: HashMap<u64, &Job> = HashMap::with_capacity(jobs.len());
    for j in jobs {
        // Ids must be unique for the heap mapping.
        if id_to_job.insert(j.id.0, j).is_some() {
            panic!("duplicate job id {} in offline instance", j.id);
        }
    }

    let mut snapshot = ScheduleSnapshot::new();
    let mut next = 0usize; // next unreleased job in arrival order
    let mut t: u64 = match by_arrival.first() {
        Some(j) => j.window.start(),
        None => return Some(snapshot),
    };

    while next < by_arrival.len() || !ready.is_empty() {
        if ready.is_empty() && next < by_arrival.len() {
            t = t.max(by_arrival[next].window.start());
        }
        while next < by_arrival.len() && by_arrival[next].window.start() <= t {
            let j = by_arrival[next];
            ready.push(Reverse((j.window.end(), j.id.0)));
            next += 1;
        }
        for machine in 0..machines {
            match ready.pop() {
                None => break,
                Some(Reverse((deadline, id))) => {
                    if t >= deadline {
                        // The job's last admissible slot is deadline-1.
                        return None;
                    }
                    snapshot.set(id_to_job[&id].id, Placement { machine, slot: t });
                }
            }
        }
        t += 1;
    }
    Some(snapshot)
}

/// `true` iff the unit-job instance is feasible on `machines` machines.
pub fn edf_feasible(jobs: &[Job], machines: usize) -> bool {
    edf_schedule(jobs, machines).is_some()
}

/// Sufficient `γ`-underallocation check: inflate every job to length `γ`,
/// restrict starts to multiples of `γ`, and test feasibility of the
/// resulting unit-block instance. If this returns `true`, the set is
/// `γ`-underallocated in the paper's sense (the restriction only makes
/// scheduling harder).
pub fn gamma_underallocated_blocked(jobs: &[Job], machines: usize, gamma: u64) -> bool {
    assert!(gamma >= 1);
    if gamma == 1 {
        return edf_feasible(jobs, machines);
    }
    let mut blocked = Vec::with_capacity(jobs.len());
    for j in jobs {
        let a = j.window.start();
        let d = j.window.end();
        if d - a < gamma {
            return false; // an inflated job cannot fit its own window
        }
        // Block starts: multiples of γ in [a, d - γ]. Block index range:
        let lo = a.div_ceil(gamma);
        let hi = (d - gamma) / gamma; // inclusive
        if hi < lo {
            return false;
        }
        blocked.push(Job::unit(j.id.0, Window::new(lo, hi + 1)));
    }
    edf_feasible(&blocked, machines)
}

/// Necessary `γ`-underallocation check: preemptive density. For every
/// critical interval `[a, d]` (a job arrival to a job deadline), the total
/// inflated work of jobs confined to it must fit: `γ·k ≤ m(d−a)`.
///
/// `O(A·D + n log n)` over distinct arrivals × deadlines; intended for
/// validation and tests, not hot paths.
pub fn gamma_feasible_preemptive(jobs: &[Job], machines: usize, gamma: u64) -> bool {
    let mut arrivals: Vec<u64> = jobs.iter().map(|j| j.window.start()).collect();
    let mut deadlines: Vec<u64> = jobs.iter().map(|j| j.window.end()).collect();
    arrivals.sort_unstable();
    arrivals.dedup();
    deadlines.sort_unstable();
    deadlines.dedup();
    for &a in &arrivals {
        for &d in &deadlines {
            if d <= a {
                continue;
            }
            let k = jobs
                .iter()
                .filter(|j| a <= j.window.start() && j.window.end() <= d)
                .count() as u64;
            if k.saturating_mul(gamma) > (machines as u64).saturating_mul(d - a) {
                return false;
            }
        }
    }
    true
}

/// Lemma 2 density over aligned windows: returns the largest integer `γ`
/// such that **every** aligned window `W` contains at most `m·|W|/γ` jobs
/// whose windows nest inside it (0 jobs ⇒ `u64::MAX`).
///
/// Exact for recursively aligned job sets. For unaligned sets, align the
/// windows first (`Window::aligned_subwindow`) — that is what the Theorem 1
/// pipeline does anyway.
pub fn aligned_density_max_gamma(windows: &[Window], machines: usize) -> u64 {
    let m = machines as u64;
    if windows.is_empty() {
        return u64::MAX;
    }
    let max_span = windows
        .iter()
        .map(|w| w.span())
        .max()
        .unwrap()
        .next_power_of_two();
    // Count jobs per aligned window, then push counts up the laminar tree.
    let mut counts: HashMap<Window, u64> = HashMap::new();
    for w in windows {
        debug_assert!(
            w.is_aligned(),
            "aligned_density_max_gamma needs aligned windows"
        );
        *counts.entry(*w).or_insert(0) += 1;
    }
    // Cumulative: for each distinct window walk the ancestor chain up to
    // max_span, adding its own count to every proper ancestor.
    let own: Vec<(Window, u64)> = counts.iter().map(|(&w, &c)| (w, c)).collect();
    for (w, c) in &own {
        let mut cur = *w;
        while cur.span() < max_span {
            match cur.aligned_parent() {
                Some(p) => {
                    *counts.entry(p).or_insert(0) += c;
                    cur = p;
                }
                None => break,
            }
        }
    }
    // γ_max = min over windows of floor(m|W| / count).
    counts
        .iter()
        .map(|(w, &c)| {
            debug_assert!(c > 0);
            m.saturating_mul(w.span()) / c
        })
        .min()
        .unwrap_or(u64::MAX)
}

/// Convenience: `true` iff the aligned windows satisfy Lemma 2 density for
/// the given `γ`.
pub fn aligned_density_ok(windows: &[Window], machines: usize, gamma: u64) -> bool {
    aligned_density_max_gamma(windows, machines) >= gamma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::schedule::validate;
    use std::collections::BTreeMap;

    fn jobs(list: &[(u64, u64, u64)]) -> Vec<Job> {
        list.iter()
            .map(|&(id, a, d)| Job::unit(id, Window::new(a, d)))
            .collect()
    }

    fn check_valid(js: &[Job], m: usize) {
        let snap = edf_schedule(js, m).expect("feasible");
        let active: BTreeMap<JobId, Window> = js.iter().map(|j| (j.id, j.window)).collect();
        validate(&snap, &active, m).expect("valid schedule");
    }

    #[test]
    fn edf_schedules_tight_instance() {
        // 4 jobs exactly filling [0, 4) on one machine.
        let js = jobs(&[(1, 0, 4), (2, 0, 4), (3, 0, 4), (4, 0, 4)]);
        check_valid(&js, 1);
        assert!(!edf_feasible(
            &jobs(&[(1, 0, 4), (2, 0, 4), (3, 0, 4), (4, 0, 4), (5, 0, 4)]),
            1
        ));
    }

    #[test]
    fn edf_respects_deadlines() {
        // Classic: tight short job must preempt-in before loose long ones.
        let js = jobs(&[(1, 0, 3), (2, 0, 1), (3, 0, 3)]);
        check_valid(&js, 1);
        // Infeasible: two jobs need slot 0.
        assert!(!edf_feasible(&jobs(&[(1, 0, 1), (2, 0, 1)]), 1));
        // ...but fine on two machines.
        check_valid(&jobs(&[(1, 0, 1), (2, 0, 1)]), 2);
    }

    #[test]
    fn edf_skips_gaps() {
        // Sparse windows far apart: must not iterate the whole axis.
        let js = jobs(&[(1, 0, 1), (2, 1 << 40, (1 << 40) + 1)]);
        check_valid(&js, 1);
    }

    #[test]
    fn edf_multi_machine_counts_capacity() {
        // 2m jobs in a span-2 window on m machines: feasible exactly.
        for m in 1..5usize {
            let mut js = Vec::new();
            for i in 0..(2 * m as u64) {
                js.push(Job::unit(i, Window::new(0, 2)));
            }
            check_valid(&js, m);
            js.push(Job::unit(99, Window::new(0, 2)));
            assert!(!edf_feasible(&js, m));
        }
    }

    #[test]
    fn blocked_gamma_check() {
        // One job with window span 4: 2-underallocated (block of 2 fits),
        // not 8-underallocated (inflated job longer than window).
        let js = jobs(&[(1, 0, 4)]);
        assert!(gamma_underallocated_blocked(&js, 1, 2));
        assert!(!gamma_underallocated_blocked(&js, 1, 8));
        // Two jobs span 4: blocked γ=2 needs two disjoint 2-blocks: ok.
        let js = jobs(&[(1, 0, 4), (2, 0, 4)]);
        assert!(gamma_underallocated_blocked(&js, 1, 2));
        // Three jobs span 4 can't be 2-underallocated on one machine.
        let js = jobs(&[(1, 0, 4), (2, 0, 4), (3, 0, 4)]);
        assert!(!gamma_underallocated_blocked(&js, 1, 2));
    }

    #[test]
    fn preemptive_check_is_weaker_than_blocked() {
        // Anything blocked-feasible is preemptive-feasible.
        let js = jobs(&[(1, 0, 8), (2, 0, 8), (3, 4, 8)]);
        for gamma in 1..=2 {
            if gamma_underallocated_blocked(&js, 1, gamma) {
                assert!(gamma_feasible_preemptive(&js, 1, gamma));
            }
        }
        // Density violation caught: 5 jobs × γ2 = 10 > 8 slots.
        let js = jobs(&[(1, 0, 8), (2, 0, 8), (3, 0, 8), (4, 0, 8), (5, 0, 8)]);
        assert!(!gamma_feasible_preemptive(&js, 1, 2));
    }

    #[test]
    fn aligned_density_gamma() {
        // 2 jobs in [0,8) and 1 in [0,2): window [0,2) has 1 job -> γ ≤ 2;
        // window [0,8) has 3 jobs -> γ ≤ 8·1/3 = 2 (floor).
        let ws = vec![Window::new(0, 8), Window::new(0, 8), Window::new(0, 2)];
        assert_eq!(aligned_density_max_gamma(&ws, 1), 2);
        assert!(aligned_density_ok(&ws, 1, 2));
        assert!(!aligned_density_ok(&ws, 1, 3));
        // More machines scale density linearly.
        assert_eq!(aligned_density_max_gamma(&ws, 2), 4);
    }

    #[test]
    fn aligned_density_disjoint_windows_counted_via_ancestor() {
        // Jobs in [0,2) and [2,4): ancestor [0,4) sees both.
        let ws = vec![Window::new(0, 2), Window::new(2, 4)];
        // [0,2): 1 job -> γ≤2. [0,4): 2 jobs -> γ≤2.
        assert_eq!(aligned_density_max_gamma(&ws, 1), 2);
    }

    #[test]
    fn aligned_density_empty() {
        assert_eq!(aligned_density_max_gamma(&[], 1), u64::MAX);
    }
}
