//! CRC-32 (IEEE 802.3 polynomial, reflected) — the checksum used by the
//! on-disk store's record framing.
//!
//! Std-only, table-driven, byte-at-a-time. The polynomial and bit order
//! match zlib's `crc32()` and the checksum Ethernet/gzip/PNG use, so a
//! store file can be cross-checked with standard tooling. Speed is a
//! non-goal: records are checksummed once on the write path (already
//! dominated by `fsync`) and once on recovery.

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE, reflected, init/final-xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello, store");
        let mut bytes = b"hello, store".to_vec();
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), base, "flip at bit {i} went undetected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }
}
