//! Monotonic time source with a manual test double.
//!
//! Telemetry (latency histograms, trace spans, replication-lag timing)
//! needs wall-clock durations, but tests that assert on telemetry output
//! need *deterministic* ones. [`Clock`] abstracts the difference: the
//! production clock reads [`std::time::Instant`] against a fixed anchor,
//! the manual clock reads a shared atomic that tests advance explicitly.
//! Cloning a clock shares its time source, so every component of one
//! process observes the same timeline.
//!
//! Nanoseconds since the clock's anchor are reported as `u64` — ~584
//! years of range, and cheap enough to record on hot paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared monotonic time source; see the module docs.
#[derive(Clone, Debug)]
pub struct Clock(Kind);

#[derive(Clone, Debug)]
enum Kind {
    /// Real time: nanoseconds since the clock was created.
    Monotonic(Instant),
    /// Test time: nanoseconds advanced explicitly via [`Clock::advance`].
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// The production clock: monotonic nanoseconds since construction.
    pub fn monotonic() -> Clock {
        Clock(Kind::Monotonic(Instant::now()))
    }

    /// A deterministic clock starting at 0; time moves only through
    /// [`Clock::advance`]. Clones share the same timeline.
    pub fn manual() -> Clock {
        Clock(Kind::Manual(Arc::new(AtomicU64::new(0))))
    }

    /// Nanoseconds since this clock's anchor.
    pub fn now_nanos(&self) -> u64 {
        match &self.0 {
            Kind::Monotonic(anchor) => {
                // Saturating: a u64 of nanoseconds outlives the process.
                u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            Kind::Manual(t) => t.load(Ordering::Relaxed),
        }
    }

    /// Advances a manual clock by `nanos`. Returns `false` (and does
    /// nothing) on a monotonic clock — real time cannot be steered.
    pub fn advance(&self, nanos: u64) -> bool {
        match &self.0 {
            Kind::Monotonic(_) => false,
            Kind::Manual(t) => {
                t.fetch_add(nanos, Ordering::Relaxed);
                true
            }
        }
    }

    /// Whether this is the deterministic manual clock.
    pub fn is_manual(&self) -> bool {
        matches!(self.0, Kind::Manual(_))
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::monotonic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_shared_and_steerable() {
        let a = Clock::manual();
        let b = a.clone();
        assert_eq!(a.now_nanos(), 0);
        assert!(a.advance(25));
        assert_eq!(b.now_nanos(), 25, "clones share the timeline");
        assert!(b.is_manual());
    }

    #[test]
    fn monotonic_clock_moves_forward_only() {
        let c = Clock::monotonic();
        let t0 = c.now_nanos();
        assert!(!c.advance(1_000), "real time cannot be steered");
        assert!(c.now_nanos() >= t0);
        assert!(!c.is_manual());
    }
}
