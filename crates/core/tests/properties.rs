//! Property-based tests for the core mathematics.

use proptest::prelude::*;
use realloc_core::feasibility::{
    aligned_density_max_gamma, edf_feasible, edf_schedule, gamma_feasible_preemptive,
    gamma_underallocated_blocked,
};
use realloc_core::schedule::validate;
use realloc_core::{log_star, Job, JobId, Window};
use std::collections::BTreeMap;

proptest! {
    // ---------------- windows & alignment ----------------

    #[test]
    fn aligned_subwindow_properties(start in 0u64..1_000_000, span in 1u64..100_000) {
        let w = Window::with_span(start, span);
        let a = w.aligned_subwindow();
        prop_assert!(a.is_aligned());
        prop_assert!(w.contains(&a));
        // Paper §5: |ALIGNED(W)| ≥ |W| / 4.
        prop_assert!(a.span() * 4 >= w.span());
        // Maximality: no aligned window of twice the span fits in W.
        let double = a.span() * 2;
        let first_fit = (w.start().div_ceil(double)) * double;
        prop_assert!(
            first_fit.checked_add(double).map(|e| e > w.end()).unwrap_or(true),
            "an aligned window of span {double} fits in {w} but ALIGNED chose {a}"
        );
    }

    #[test]
    fn aligned_parent_contains_child(start in 0u64..1_000_000, exp in 0u32..20) {
        let span = 1u64 << exp;
        let w = Window::aligned_enclosing(start, span);
        prop_assert!(w.is_aligned());
        prop_assert!(w.contains_slot(start));
        let p = w.aligned_parent().unwrap();
        prop_assert!(p.is_aligned());
        prop_assert!(p.contains(&w));
        prop_assert_eq!(p.span(), 2 * span);
    }

    #[test]
    fn trim_stays_inside(k in 0u64..1000, exp in 1u32..16, cut in 0u32..16) {
        let span = 1u64 << exp;
        let w = Window::with_span(k * span, span);
        let t = w.trim_to(1u64 << cut.min(exp));
        prop_assert!(w.contains(&t));
        prop_assert!(t.is_aligned());
    }

    // ---------------- log* ----------------

    #[test]
    fn log_star_shrinks_fast(n in 1u64..u64::MAX) {
        let v = log_star(n);
        prop_assert!(v <= 5);
        if n >= 2 {
            prop_assert!(v >= 1);
        }
    }

    // ---------------- EDF feasibility ----------------

    #[test]
    fn edf_schedules_are_valid(
        jobs in prop::collection::vec((0u64..64, 1u64..32), 1..40),
        machines in 1usize..4,
    ) {
        let jobs: Vec<Job> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (a, s))| Job::unit(i as u64, Window::with_span(a, s)))
            .collect();
        if let Some(snap) = edf_schedule(&jobs, machines) {
            let active: BTreeMap<JobId, Window> =
                jobs.iter().map(|j| (j.id, j.window)).collect();
            validate(&snap, &active, machines).unwrap();
        } else {
            // Infeasibility must be certified by a violated density: some
            // interval [a, d) contains more jobs than machines × slots.
            prop_assert!(
                !gamma_feasible_preemptive(&jobs, machines, 1),
                "EDF rejected a density-feasible unit instance"
            );
        }
    }

    #[test]
    fn edf_monotone_in_machines(
        jobs in prop::collection::vec((0u64..64, 1u64..16), 1..30),
    ) {
        let jobs: Vec<Job> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (a, s))| Job::unit(i as u64, Window::with_span(a, s)))
            .collect();
        // Feasibility is monotone in the machine count.
        let mut prev = false;
        for m in 1..=4usize {
            let now = edf_feasible(&jobs, m);
            prop_assert!(!prev || now, "feasible on {} machines but not {}", m - 1, m);
            prev = now;
        }
    }

    #[test]
    fn blocked_gamma_implies_preemptive_gamma(
        jobs in prop::collection::vec((0u64..32, 2u64..24), 1..20),
        gamma in 1u64..4,
    ) {
        let jobs: Vec<Job> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, (a, s))| Job::unit(i as u64, Window::with_span(a, s)))
            .collect();
        // The blocked (sufficient) check implies the preemptive (necessary)
        // one — they sandwich true γ-underallocation.
        if gamma_underallocated_blocked(&jobs, 1, gamma) {
            prop_assert!(gamma_feasible_preemptive(&jobs, 1, gamma));
        }
    }

    #[test]
    fn density_gamma_monotone_under_insertion(
        jobs in prop::collection::vec((0u64..64u64, 0u32..6), 2..30),
    ) {
        // Adding a job can only lower (or keep) the max density γ.
        let windows: Vec<Window> = jobs
            .iter()
            .map(|&(start, exp)| {
                let span = 1u64 << exp;
                Window::aligned_enclosing(start, span)
            })
            .collect();
        let all = aligned_density_max_gamma(&windows, 1);
        let fewer = aligned_density_max_gamma(&windows[..windows.len() - 1], 1);
        prop_assert!(all <= fewer);
    }

    // ---------------- text round trip ----------------

    #[test]
    fn textio_round_trips(
        ops in prop::collection::vec((any::<bool>(), 0u64..50, 0u64..1000, 1u64..100), 0..60),
    ) {
        use realloc_core::request::Request;
        use realloc_core::textio::{from_text, to_text};
        // Build an arbitrary (not necessarily valid) request list; the
        // format must round-trip it verbatim either way.
        let seq: realloc_core::RequestSeq = ops
            .into_iter()
            .map(|(ins, id, a, s)| {
                if ins {
                    Request::Insert {
                        id: JobId(id),
                        window: Window::with_span(a, s),
                    }
                } else {
                    Request::Delete { id: JobId(id) }
                }
            })
            .collect();
        let text = to_text(&seq);
        let back = from_text(&text).unwrap();
        prop_assert_eq!(back.requests(), seq.requests());
    }

    // ---------------- cost netting ----------------

    #[test]
    fn netting_never_increases_costs(
        // 0..90 moves: crosses netted()'s 32-move threshold, so both the
        // linear fast path and the hash-map path are exercised.
        raw in prop::collection::vec((0u64..6, 0usize..3, 0u64..20, 0usize..3, 0u64..20), 0..90),
    ) {
        use realloc_core::{Move, Placement, RequestOutcome};
        // Build chained move lists per job so from/to are consistent.
        let mut outcome = RequestOutcome::empty();
        let mut last: BTreeMap<u64, Placement> = BTreeMap::new();
        for (job, m1, s1, m2, s2) in raw {
            let from = last.get(&job).copied().or(Some(Placement { machine: m1, slot: s1 }));
            let to = Placement { machine: m2, slot: s2 };
            outcome.push(Move { job: JobId(job), from, to: Some(to) });
            last.insert(job, to);
        }
        let netted = outcome.netted();
        prop_assert!(netted.reallocation_cost() <= outcome.reallocation_cost());
        prop_assert!(netted.migration_cost() <= outcome.moves.len() as u64);
        // Netting is idempotent.
        prop_assert_eq!(netted.netted(), netted.clone());
        // Both implementations (linear fast path for short lists, hash
        // map above the threshold) must agree with the reference rule:
        // one net move per job at first appearance, first `from` + last
        // `to`, moves that cancel to (None, None) dropped.
        let mut ref_moves: Vec<Move> = Vec::new();
        for m in &outcome.moves {
            match ref_moves.iter_mut().find(|acc| acc.job == m.job) {
                None => ref_moves.push(*m),
                Some(acc) => acc.to = m.to,
            }
        }
        ref_moves.retain(|m| m.from.is_some() || m.to.is_some());
        prop_assert_eq!(netted.moves, ref_moves);
    }
}
