//! Edge-case tests for the core types: extreme coordinates, degenerate
//! instances, and cost-accounting corners.

use realloc_core::feasibility::{edf_feasible, edf_schedule, gamma_underallocated_blocked};
use realloc_core::{log_star, Job, JobId, Move, Placement, RequestOutcome, Tower, Window};

#[test]
fn window_at_axis_extremes() {
    let w = Window::new(0, 1);
    assert!(w.is_aligned());
    assert_eq!(w.aligned_subwindow(), w);

    // Near the top of the u64 axis (but inside the scheduler's 2^63 cap).
    let top = 1u64 << 62;
    let w = Window::new(top - 8, top);
    assert!(w.is_aligned());
    assert_eq!(w.span(), 8);
    let p = w.aligned_parent().unwrap();
    assert!(p.contains(&w));
}

#[test]
fn aligned_subwindow_of_giant_span() {
    let w = Window::new(1, (1 << 62) + 1);
    let a = w.aligned_subwindow();
    assert!(a.is_aligned());
    assert!(w.contains(&a));
    assert!(a.span() * 4 >= w.span());
}

#[test]
fn single_slot_instances() {
    // One job in one slot is feasible; two are not.
    let j1 = Job::unit(1, Window::new(5, 6));
    let j2 = Job::unit(2, Window::new(5, 6));
    assert!(edf_feasible(&[j1], 1));
    assert!(!edf_feasible(&[j1, j2], 1));
    assert!(edf_feasible(&[j1, j2], 2));
}

#[test]
fn empty_instance_is_feasible() {
    assert!(edf_feasible(&[], 1));
    assert_eq!(edf_schedule(&[], 3).unwrap().len(), 0);
    assert!(gamma_underallocated_blocked(&[], 1, 100));
}

#[test]
fn staircase_is_tight_but_feasible() {
    // The Lemma 12 staircase: feasible, but exactly 1-underallocated.
    let jobs: Vec<Job> = (0..200u64)
        .map(|j| Job::unit(j, Window::new(j, j + 2)))
        .collect();
    assert!(edf_feasible(&jobs, 1));
    assert!(gamma_underallocated_blocked(&jobs, 1, 1));
    assert!(!gamma_underallocated_blocked(&jobs, 1, 2));
}

#[test]
fn log_star_boundaries() {
    // Exact tower boundaries of the paper ladder (ceil-lg chains):
    // 32 → 5 → 3 → 2 → 1 and 256 → 8 → 3 → 2 → 1.
    assert_eq!(log_star(32), 4);
    assert_eq!(log_star(256), 4);
    // Monotone across the interesting range.
    assert!(log_star(1 << 20) <= log_star(u64::MAX));
}

#[test]
fn tower_single_threshold() {
    let t = Tower::custom(vec![2]);
    assert_eq!(t.level_of(1), 0);
    assert_eq!(t.level_of(2), 0);
    assert_eq!(t.level_of(3), 1);
    assert_eq!(t.interval_span(1), 2);
    assert_eq!(t.max_levels(), 2);
}

#[test]
fn outcome_netting_insert_then_delete_cancels() {
    // A job inserted and removed within one outcome nets to nothing
    // chargeable.
    let p = Placement {
        machine: 0,
        slot: 3,
    };
    let mut o = RequestOutcome::empty();
    o.push(Move {
        job: JobId(1),
        from: None,
        to: Some(p),
    });
    o.push(Move {
        job: JobId(1),
        from: Some(p),
        to: None,
    });
    let n = o.netted();
    assert_eq!(n.reallocation_cost(), 0);
    assert_eq!(n.migration_cost(), 0);
}

#[test]
fn edf_dense_block_plus_stragglers() {
    // A fully dense block [0, 64) plus loose jobs after it.
    let mut jobs: Vec<Job> = (0..64u64)
        .map(|j| Job::unit(j, Window::new(0, 64)))
        .collect();
    jobs.push(Job::unit(100, Window::new(64, 1 << 40)));
    jobs.push(Job::unit(101, Window::new(64, 66)));
    let snap = edf_schedule(&jobs, 1).expect("feasible");
    assert_eq!(snap.len(), 66);
    // Adding one more job confined to the dense block tips it over.
    jobs.push(Job::unit(102, Window::new(0, 64)));
    assert!(!edf_feasible(&jobs, 1));
}

#[test]
fn window_display_and_ordering() {
    let a = Window::new(0, 4);
    let b = Window::new(0, 8);
    let c = Window::new(4, 8);
    assert!(a < b && b < c);
    assert_eq!(format!("{a}"), "[0, 4)");
    assert_eq!(format!("{a:?}"), "[0, 4)");
}
