//! TCP client driver for the serving tier (`realloc-service`).
//!
//! Speaks the service's text protocol directly over the workspace's
//! length-prefixed framing, so the workloads crate can drive a live
//! server without depending on it (the service crate depends on the
//! engine, which dev-depends on this crate — the client lives here,
//! below both). One command per frame, one response frame per command;
//! commands may be pipelined (send several, then read the responses in
//! order).
//!
//! # Commands
//!
//! ```text
//! place <tenant> <id> <start> <end>   → ok placed <global> | ok queued <global>
//! remove <tenant> <id>                → ok removed <global> | ok queued <global>
//! window <tenant> <id>                → ok window <start> <end> | ok window none
//! metrics                             → ok metrics requests=… failed=… active=… epoch=… shards=…
//! any, when shedding                  → overloaded <retry_after_ms>
//! any, on a malformed/refused input   → err <detail>
//! ```

use crate::feed::TenantFeed;
use realloc_core::textio::{read_frame, write_frame};
use realloc_core::Request;
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Cap on one response frame from the server.
const MAX_RESPONSE_BYTES: u32 = 1 << 16;

/// One parsed server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QosResponse {
    /// The request was admitted and serviced; carries the global job id.
    Placed(u64),
    /// The removal was admitted and serviced; carries the global job id.
    Removed(u64),
    /// Admitted but deferred by flush coalescing (serviced at a later
    /// flush); carries the global job id.
    Queued(u64),
    /// The job's original window.
    Window(u64, u64),
    /// The job is not active (unknown or already removed).
    WindowNone,
    /// Engine counters at the time of the poll.
    Metrics {
        /// Requests processed since boot.
        requests: u64,
        /// Requests that failed validation or capacity.
        failed: u64,
        /// Jobs currently scheduled.
        active: u64,
        /// Reallocation epoch.
        epoch: u64,
        /// Shard count.
        shards: u64,
    },
    /// Shed by QoS; retry after the given backoff.
    Overloaded {
        /// Server-suggested backoff before retrying.
        retry_after_ms: u64,
    },
    /// Refused with a reason (malformed command, bad tenant, engine
    /// failure code, …).
    Refused(String),
}

impl QosResponse {
    /// Parses one response line. Unrecognized shapes become
    /// [`QosResponse::Refused`] with the raw line as the reason. A
    /// ` trace <id>` annotation on an admitted reply (traced serving
    /// tier) is stripped; use [`QosResponse::parse_traced`] to keep it.
    pub fn parse(line: &str) -> QosResponse {
        Self::parse_traced(line).0
    }

    /// [`QosResponse::parse`] that also returns the serving tier's
    /// causal trace id when the reply carries a ` trace <id>` suffix —
    /// the key into every node's trace ring for this request's spans.
    /// Only admitted-mutation shapes (`placed`/`removed`/`queued`) are
    /// ever annotated; the suffix is not stripped from other shapes
    /// (an `err` reason legitimately containing the words stays whole).
    pub fn parse_traced(line: &str) -> (QosResponse, Option<u64>) {
        let line = line.trim();
        if let Some(pos) = line.rfind(" trace ") {
            let tail = &line[pos + " trace ".len()..];
            if let Ok(id) = tail.parse::<u64>() {
                if id != 0 {
                    let r = Self::parse_core(line[..pos].trim());
                    if matches!(
                        r,
                        QosResponse::Placed(_) | QosResponse::Removed(_) | QosResponse::Queued(_)
                    ) {
                        return (r, Some(id));
                    }
                }
            }
        }
        (Self::parse_core(line), None)
    }

    fn parse_core(line: &str) -> QosResponse {
        let fields: Vec<&str> = line.split_whitespace().collect();
        let num = |s: &&str| s.parse::<u64>().ok();
        match fields.as_slice() {
            ["ok", "placed", id] if num(id).is_some() => QosResponse::Placed(num(id).unwrap()),
            ["ok", "removed", id] if num(id).is_some() => QosResponse::Removed(num(id).unwrap()),
            ["ok", "queued", id] if num(id).is_some() => QosResponse::Queued(num(id).unwrap()),
            ["ok", "window", "none"] => QosResponse::WindowNone,
            ["ok", "window", s, e] if num(s).is_some() && num(e).is_some() => {
                QosResponse::Window(num(s).unwrap(), num(e).unwrap())
            }
            ["ok", "metrics", rest @ ..] => {
                let mut kv = BTreeMap::new();
                for f in rest {
                    if let Some((k, v)) = f.split_once('=') {
                        if let Ok(v) = v.parse::<u64>() {
                            kv.insert(k, v);
                        }
                    }
                }
                let get = |k: &str| kv.get(k).copied().unwrap_or(0);
                QosResponse::Metrics {
                    requests: get("requests"),
                    failed: get("failed"),
                    active: get("active"),
                    epoch: get("epoch"),
                    shards: get("shards"),
                }
            }
            ["overloaded", ms] if num(ms).is_some() => QosResponse::Overloaded {
                retry_after_ms: num(ms).unwrap(),
            },
            ["err", ..] => QosResponse::Refused(line["err".len()..].trim().to_string()),
            _ => QosResponse::Refused(line.to_string()),
        }
    }

    /// Whether the command was admitted past QoS (any `ok …` shape).
    pub fn admitted(&self) -> bool {
        !matches!(
            self,
            QosResponse::Overloaded { .. } | QosResponse::Refused(_)
        )
    }
}

/// A pipelining client connection to one service endpoint.
#[derive(Debug)]
pub struct QosClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    pending: usize,
}

impl QosClient {
    /// Connects to a serving endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<QosClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let write_half = stream.try_clone()?;
        Ok(QosClient {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            pending: 0,
        })
    }

    /// Bounds how long [`QosClient::recv`] waits for a response.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Ships one raw command frame without waiting for the response
    /// (pipelining); pair with [`QosClient::recv`].
    pub fn send_raw(&mut self, command: &str) -> std::io::Result<()> {
        write_frame(&mut self.writer, command.as_bytes())?;
        self.writer.flush()?;
        self.pending += 1;
        Ok(())
    }

    /// Ships one request on behalf of `tenant` (pipelined).
    pub fn send_request(&mut self, tenant: u16, request: &Request) -> std::io::Result<()> {
        let cmd = match request {
            Request::Insert { id, window } => format!(
                "place {tenant} {} {} {}",
                id.0,
                window.start(),
                window.end()
            ),
            Request::Delete { id } => format!("remove {tenant} {}", id.0),
        };
        self.send_raw(&cmd)
    }

    /// Reads the next pipelined response, in command order.
    pub fn recv(&mut self) -> std::io::Result<QosResponse> {
        self.recv_traced().map(|(r, _)| r)
    }

    /// [`QosClient::recv`] keeping the serving tier's causal trace id
    /// when the reply was annotated ([`QosResponse::parse_traced`]).
    pub fn recv_traced(&mut self) -> std::io::Result<(QosResponse, Option<u64>)> {
        let Some(payload) = read_frame(&mut self.reader, MAX_RESPONSE_BYTES)? else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed with responses pending",
            ));
        };
        self.pending = self.pending.saturating_sub(1);
        let text = String::from_utf8(payload).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response is not UTF-8: {e}"),
            )
        })?;
        Ok(QosResponse::parse_traced(&text))
    }

    /// Responses shipped but not yet read.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// One round trip: command out, response in.
    pub fn call(&mut self, command: &str) -> std::io::Result<QosResponse> {
        self.send_raw(command)?;
        self.recv()
    }

    /// Places a job: `place <tenant> <id> <start> <end>`.
    pub fn place(
        &mut self,
        tenant: u16,
        id: u64,
        start: u64,
        end: u64,
    ) -> std::io::Result<QosResponse> {
        self.call(&format!("place {tenant} {id} {start} {end}"))
    }

    /// Removes a job: `remove <tenant> <id>`.
    pub fn remove(&mut self, tenant: u16, id: u64) -> std::io::Result<QosResponse> {
        self.call(&format!("remove {tenant} {id}"))
    }

    /// Looks up a job's original window: `window <tenant> <id>`.
    pub fn window(&mut self, tenant: u16, id: u64) -> std::io::Result<QosResponse> {
        self.call(&format!("window {tenant} {id}"))
    }

    /// Polls engine counters: `metrics`.
    pub fn metrics(&mut self) -> std::io::Result<QosResponse> {
        self.call("metrics")
    }
}

/// Per-tenant outcome counts from [`drive_feed`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriveStats {
    /// Commands sent.
    pub sent: u64,
    /// Admitted and serviced (or queued) by the server.
    pub admitted: u64,
    /// Shed with `overloaded`.
    pub shed: u64,
    /// Refused with `err`.
    pub refused: u64,
}

/// Drives a [`TenantFeed`] against a live server over one pipelined
/// connection: each batch is shipped window-at-a-time (`pipeline_depth`
/// commands in flight), responses tallied per tenant. Returns the
/// per-tenant stats, in tenant order.
pub fn drive_feed(
    addr: impl ToSocketAddrs,
    feed: &mut TenantFeed,
    per_tenant: usize,
    batches: usize,
    pipeline_depth: usize,
) -> std::io::Result<BTreeMap<u16, DriveStats>> {
    assert!(pipeline_depth >= 1);
    let mut client = QosClient::connect(addr)?;
    let mut stats: BTreeMap<u16, DriveStats> = BTreeMap::new();
    let tally = |s: &mut DriveStats, r: &QosResponse| {
        if r.admitted() {
            s.admitted += 1;
        } else if matches!(r, QosResponse::Overloaded { .. }) {
            s.shed += 1;
        } else {
            s.refused += 1;
        }
    };
    for _ in 0..batches {
        let Some(batch) = feed.next_batch(per_tenant) else {
            break;
        };
        let mut inflight: std::collections::VecDeque<u16> = std::collections::VecDeque::new();
        for (tenant, request) in &batch {
            client.send_request(*tenant, request)?;
            stats.entry(*tenant).or_default().sent += 1;
            inflight.push_back(*tenant);
            while inflight.len() >= pipeline_depth {
                let t = inflight.pop_front().expect("nonempty");
                let r = client.recv()?;
                tally(stats.entry(t).or_default(), &r);
            }
        }
        while let Some(t) = inflight.pop_front() {
            let r = client.recv()?;
            tally(stats.entry(t).or_default(), &r);
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_annotations_parse_and_strip() {
        assert_eq!(
            QosResponse::parse_traced("ok placed 7 trace 99"),
            (QosResponse::Placed(7), Some(99))
        );
        assert_eq!(
            QosResponse::parse_traced("ok queued 3 trace 12345"),
            (QosResponse::Queued(3), Some(12345))
        );
        // `parse` strips the suffix, so tallies stay correct under tracing.
        assert_eq!(
            QosResponse::parse("ok removed 7 trace 99"),
            QosResponse::Removed(7)
        );
        // Untraced replies pass through; id 0 is the untraced sentinel;
        // and non-admitted shapes keep the words (an err reason is never
        // mistaken for an annotation).
        assert_eq!(
            QosResponse::parse_traced("ok placed 7"),
            (QosResponse::Placed(7), None)
        );
        assert_eq!(
            QosResponse::parse_traced("ok placed 7 trace 0"),
            (
                QosResponse::Refused("ok placed 7 trace 0".to_string()),
                None
            )
        );
        assert_eq!(
            QosResponse::parse_traced("err lost trace 5"),
            (QosResponse::Refused("lost trace 5".to_string()), None)
        );
    }

    #[test]
    fn responses_parse_shapes_and_admission() {
        assert_eq!(QosResponse::parse("ok placed 7"), QosResponse::Placed(7));
        assert_eq!(QosResponse::parse("ok removed 7"), QosResponse::Removed(7));
        assert_eq!(QosResponse::parse("ok queued 9"), QosResponse::Queued(9));
        assert_eq!(
            QosResponse::parse("ok window 10 14"),
            QosResponse::Window(10, 14)
        );
        assert_eq!(
            QosResponse::parse("ok window none"),
            QosResponse::WindowNone
        );
        assert_eq!(
            QosResponse::parse("ok metrics requests=5 failed=1 active=4 epoch=2 shards=8"),
            QosResponse::Metrics {
                requests: 5,
                failed: 1,
                active: 4,
                epoch: 2,
                shards: 8
            }
        );
        assert_eq!(
            QosResponse::parse("overloaded 250"),
            QosResponse::Overloaded {
                retry_after_ms: 250
            }
        );
        assert_eq!(
            QosResponse::parse("err duplicate"),
            QosResponse::Refused("duplicate".to_string())
        );
        assert!(QosResponse::parse("ok placed 7").admitted());
        assert!(!QosResponse::parse("overloaded 250").admitted());
        assert!(!QosResponse::parse("err nope").admitted());
        // Garbage degrades to Refused, never a panic.
        assert!(matches!(QosResponse::parse("???"), QosResponse::Refused(_)));
        assert!(matches!(
            QosResponse::parse("ok placed banana"),
            QosResponse::Refused(_)
        ));
    }
}
