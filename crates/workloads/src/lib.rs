//! # realloc-workloads
//!
//! Request-sequence generators for the reallocation-scheduling experiments:
//!
//! * [`churn`] — random insert/delete churn with **certified
//!   underallocation**: a laminar budget over aligned windows enforces the
//!   Lemma 2 density bound `count(W) ≤ m·|W|/γ` for every aligned window at
//!   all times, so generated sequences are `γ`-dense by construction;
//! * [`adversary`] — the paper's lower-bound constructions: the Lemma 11
//!   migration adversary (`Ω(s)` migrations for any scheduler), the
//!   Lemma 12 toggle (`Ω(s²)` reallocations without slack), and the
//!   Observation 13 sized-job slide (`Ω(kn)` with job sizes `{1, k}`);
//! * [`scenarios`] — themed presets: the doctor's office from the paper's
//!   introduction, and a cloud batch cluster;
//! * [`feed`] — scenario → engine-request adapters: flush-sized batches
//!   and multi-tenant interleaving for `realloc-engine` ingestion;
//! * [`driver`] — a TCP client for the serving tier: speaks the
//!   `realloc-service` text protocol over the workspace framing, so
//!   feeds can be driven against a live server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod churn;
pub mod driver;
pub mod feed;
pub mod scenarios;

pub use adversary::{lemma12_toggle, obs13_slide, Lemma11Adversary, SizedRequest};
pub use churn::{ChurnConfig, ChurnGenerator};
pub use driver::{drive_feed, DriveStats, QosClient, QosResponse};
pub use feed::TenantFeed;
pub use scenarios::{hotspot, HOTSPOT_WHALE};
