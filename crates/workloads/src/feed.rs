//! Scenario → engine-request adapters.
//!
//! The serving layer (`realloc-engine`) ingests requests in batches,
//! optionally tagged with a tenant. This module turns the crate's
//! generators into that shape without the workloads crate depending on
//! the engine: batches are plain [`RequestSeq`]s, tenants plain `u16`s
//! (matching `realloc_engine::TenantId`'s representation).

use crate::churn::ChurnGenerator;
use realloc_core::{Request, RequestSeq};

/// Chops a churn stream into flush-sized batches: up to `total` requests
/// in batches of `batch_size` (the last batch may be short; generation
/// stops early if the generator saturates).
pub fn batches(gen: &mut ChurnGenerator, total: usize, batch_size: usize) -> Vec<RequestSeq> {
    assert!(batch_size >= 1);
    let mut out = Vec::with_capacity(total.div_ceil(batch_size));
    let mut produced = 0usize;
    while produced < total {
        let want = batch_size.min(total - produced);
        let batch = gen.generate(want);
        if batch.is_empty() {
            break;
        }
        produced += batch.len();
        out.push(batch);
    }
    out
}

/// Interleaves several tenants' churn streams into engine-sized batches.
///
/// Each batch draws `per_tenant` requests from every live stream in
/// round-robin tenant order, yielding `(tenant, request)` pairs — the
/// exact shape `realloc_engine::Engine::submit_for` consumes. Tenant ids
/// must be distinct; each tenant keeps its own id space (the engine
/// namespaces them).
pub struct TenantFeed {
    streams: Vec<(u16, ChurnGenerator)>,
}

impl TenantFeed {
    /// Builds a feed from `(tenant, generator)` streams.
    pub fn new(streams: Vec<(u16, ChurnGenerator)>) -> Self {
        let mut ids: Vec<u16> = streams.iter().map(|(t, _)| *t).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), streams.len(), "duplicate tenant id");
        TenantFeed { streams }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.streams.len()
    }

    /// Produces the next batch, `per_tenant` requests per live tenant;
    /// `None` when every stream is exhausted.
    pub fn next_batch(&mut self, per_tenant: usize) -> Option<Vec<(u16, Request)>> {
        let mut out = Vec::with_capacity(per_tenant * self.streams.len());
        for (tenant, gen) in &mut self.streams {
            for _ in 0..per_tenant {
                match gen.next_request() {
                    Some(r) => out.push((*tenant, r)),
                    None => break,
                }
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnConfig;

    fn gen(seed: u64) -> ChurnGenerator {
        ChurnGenerator::new(
            ChurnConfig {
                target_active: 32,
                horizon: 1 << 10,
                spans: vec![1, 4, 16],
                ..ChurnConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn batches_cover_the_requested_total() {
        let mut g = gen(1);
        let bs = batches(&mut g, 500, 64);
        let total: usize = bs.iter().map(|b| b.len()).sum();
        assert_eq!(total, 500);
        assert!(bs.iter().take(bs.len() - 1).all(|b| b.len() == 64));
        // Concatenated, the batches are one well-formed stream.
        let mut all = RequestSeq::new();
        for b in bs {
            all.extend(b);
        }
        all.validate().expect("batched stream stays well-formed");
    }

    #[test]
    fn tenant_feed_interleaves_all_tenants() {
        let mut feed = TenantFeed::new(vec![(1, gen(10)), (2, gen(20)), (3, gen(30))]);
        assert_eq!(feed.tenants(), 3);
        let batch = feed.next_batch(8).expect("fresh streams produce");
        assert_eq!(batch.len(), 24);
        for t in [1u16, 2, 3] {
            assert_eq!(batch.iter().filter(|(bt, _)| *bt == t).count(), 8);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate tenant id")]
    fn duplicate_tenants_rejected() {
        TenantFeed::new(vec![(1, gen(1)), (1, gen(2))]);
    }
}
