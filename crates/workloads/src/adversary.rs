//! The paper's lower-bound constructions (§6 and Observation 13).

use realloc_core::{Job, JobId, Reallocator, RequestSeq, Window};

/// The Lemma 11 migration adversary.
///
/// > *"There exists a sufficiently large sequence of `s` job
/// > insertions/deletions on `m > 1` machines, such that any deterministic
/// > scheduling algorithm has a total migration cost of `Ω(s)`."*
///
/// The construction is **adaptive** (it deletes exactly the jobs the
/// scheduler placed on the first `m/2` machines), so it drives a live
/// scheduler rather than emitting a static sequence. Each round of `6m`
/// requests forces `≥ m/2` migrations:
///
/// 1. insert `2m` span-2 jobs with window `[0, 2)` — the only feasible
///    schedule has two per machine;
/// 2. delete the `m` jobs on the first `⌈m/2⌉` machines;
/// 3. insert `m` span-1 jobs with window `[0, 1)` — now every machine needs
///    a span-1 job at slot 0 and a span-2 job at slot 1, so half the
///    remaining span-2 jobs must migrate;
/// 4. delete everything.
#[derive(Clone, Debug)]
pub struct Lemma11Adversary {
    next_id: u64,
}

/// What a [`Lemma11Adversary`] run measured.
#[derive(Clone, Copy, Debug, Default)]
pub struct Lemma11Report {
    /// Requests issued.
    pub requests: u64,
    /// Total migrations over the run (netted per request).
    pub migrations: u64,
    /// Total reallocations over the run (netted per request).
    pub reallocations: u64,
}

impl Default for Lemma11Adversary {
    fn default() -> Self {
        Self::new()
    }
}

impl Lemma11Adversary {
    /// New adversary.
    pub fn new() -> Self {
        Lemma11Adversary { next_id: 0 }
    }

    fn fresh(&mut self) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Runs `rounds` rounds against `sched` (which must have `m ≥ 2`
    /// machines and start empty), returning the measured costs.
    pub fn run<R: Reallocator>(
        &mut self,
        sched: &mut R,
        rounds: usize,
    ) -> Result<Lemma11Report, realloc_core::Error> {
        let m = sched.machines();
        assert!(m >= 2, "Lemma 11 needs m > 1");
        assert_eq!(sched.active_count(), 0, "scheduler must start empty");
        let mut report = Lemma11Report::default();
        let tally = |out: realloc_core::RequestOutcome, report: &mut Lemma11Report| {
            let net = out.netted();
            report.requests += 1;
            report.migrations += net.migration_cost();
            report.reallocations += net.reallocation_cost();
        };

        for _ in 0..rounds {
            // Step 1: 2m span-2 jobs.
            let mut span2: Vec<JobId> = Vec::with_capacity(2 * m);
            for _ in 0..2 * m {
                let id = self.fresh();
                tally(sched.insert(id, Window::new(0, 2))?, &mut report);
                span2.push(id);
            }
            // Step 2: delete the jobs on the first ⌈m/2⌉ machines.
            let snap = sched.snapshot();
            let half = m.div_ceil(2);
            let doomed: Vec<JobId> = span2
                .iter()
                .copied()
                .filter(|&id| snap.placement(id).is_some_and(|p| p.machine < half))
                .collect();
            for id in &doomed {
                tally(sched.delete(*id)?, &mut report);
            }
            span2.retain(|id| !doomed.contains(id));
            // Step 3: m span-1 jobs.
            let mut span1 = Vec::with_capacity(m);
            for _ in 0..m {
                let id = self.fresh();
                tally(sched.insert(id, Window::new(0, 1))?, &mut report);
                span1.push(id);
            }
            // Step 4: delete everything.
            for id in span2.drain(..).chain(span1.drain(..)) {
                tally(sched.delete(id)?, &mut report);
            }
        }
        Ok(report)
    }
}

/// The Lemma 12 toggle: a static sequence forcing `Ω(s²)` total
/// reallocations on **any** scheduler when there is no slack.
///
/// `eta` staircase jobs (job `j` has window `[j, j+2)`) stay active; each
/// round inserts and deletes a unit-window job at the front (pushing every
/// staircase job to its late slot) and then at the back (pulling them all
/// back to their early slot).
pub fn lemma12_toggle(eta: u64, rounds: usize) -> RequestSeq {
    let mut seq = RequestSeq::new();
    for j in 0..eta {
        seq.insert(j, Window::new(j, j + 2));
    }
    let mut next = eta;
    for _ in 0..rounds {
        seq.insert(next, Window::new(0, 1));
        seq.delete(next);
        next += 1;
        seq.insert(next, Window::new(eta, eta + 1));
        seq.delete(next);
        next += 1;
    }
    seq
}

/// A request over sized jobs (Observation 13 only — the main model is
/// unit-size).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizedRequest {
    /// Insert a sized job.
    Insert(Job),
    /// Delete a job.
    Delete(JobId),
}

/// The Observation 13 slide: `k` unit jobs share the window `[0, 2γk)` with
/// one size-`k` job whose window slides across in steps of `k`. Every slide
/// (2 requests) forces each unit job to be rescheduled at least once per
/// full sweep, for `Ω(kn)` aggregate cost over `n` repetitions — for **any**
/// scheduler, at any constant underallocation `γ`.
pub fn obs13_slide(gamma: u64, k: u64, sweeps: usize) -> Vec<SizedRequest> {
    assert!(gamma >= 1 && k >= 1);
    let m = 2 * gamma * k; // schedule length
    let mut reqs = Vec::new();
    for i in 0..k {
        reqs.push(SizedRequest::Insert(Job::unit(i, Window::new(0, m))));
    }
    let mut next = k;
    reqs.push(SizedRequest::Insert(Job::sized(next, Window::new(0, k), k)));
    for _ in 0..sweeps {
        for pos in 1..(m / k) {
            reqs.push(SizedRequest::Delete(JobId(next)));
            next += 1;
            reqs.push(SizedRequest::Insert(Job::sized(
                next,
                Window::new(pos * k, (pos + 1) * k),
                k,
            )));
        }
        // Slide back to the start for the next sweep.
        reqs.push(SizedRequest::Delete(JobId(next)));
        next += 1;
        reqs.push(SizedRequest::Insert(Job::sized(next, Window::new(0, k), k)));
    }
    reqs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma12_sequence_shape() {
        let seq = lemma12_toggle(8, 3);
        seq.validate().unwrap();
        // 8 inserts + 3 rounds × 4 requests.
        assert_eq!(seq.len(), 8 + 12);
        assert_eq!(seq.peak_active(), 9);
    }

    #[test]
    fn obs13_sequence_shape() {
        let reqs = obs13_slide(2, 4, 1);
        // k unit inserts + big insert + (m/k − 1 + 1) slides × 2 requests.
        let slides = (2 * 2 * 4) / 4; // m/k = 2γ
        assert_eq!(reqs.len(), 4 + 1 + 2 * slides as usize);
        // Exactly one big job active at any time.
        let mut big_active = 0i64;
        for r in &reqs {
            match r {
                SizedRequest::Insert(j) if j.size > 1 => big_active += 1,
                SizedRequest::Delete(_) => big_active -= 1,
                _ => {}
            }
            assert!((0..=1).contains(&big_active));
        }
    }
}
