//! Underallocation-controlled random churn.
//!
//! The generator maintains, for every aligned window `A`, the number of
//! active jobs whose *effective* (aligned) window nests inside `A`, and
//! only emits an insert if every ancestor budget `count(A) < m·|A|/γ`
//! survives — exactly Lemma 2's density bound. Sequences are therefore
//! `γ`-dense by construction at every prefix, which is the precondition
//! knob for every Theorem 1 experiment (and the `γ` ablation sweep).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use realloc_core::{JobId, Request, RequestSeq, Window};
use std::collections::HashMap;

/// Configuration for [`ChurnGenerator`].
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Machines the consumer will use (scales the density budget).
    pub machines: usize,
    /// Density parameter: every aligned window keeps ≤ `m·|W|/γ` jobs.
    pub gamma: u64,
    /// Time horizon (power of two); all windows live in `[0, horizon)`.
    pub horizon: u64,
    /// Window spans to sample from (weights uniform).
    pub spans: Vec<u64>,
    /// Steady-state number of active jobs to hover around.
    pub target_active: usize,
    /// Probability of an insert when below target (else delete).
    pub insert_bias: f64,
    /// Emit unaligned windows (random start); the budget is still enforced
    /// on their aligned effective windows, mirroring the §5 pipeline.
    pub unaligned: bool,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            machines: 1,
            gamma: 8,
            horizon: 1 << 14,
            spans: vec![1, 4, 16, 64, 256, 1024],
            target_active: 128,
            insert_bias: 0.55,
            unaligned: false,
        }
    }
}

/// Random churn generator with certified `γ`-density.
#[derive(Clone, Debug)]
pub struct ChurnGenerator {
    cfg: ChurnConfig,
    rng: StdRng,
    /// Cumulative job counts per aligned window (each job charges every
    /// aligned ancestor of its effective window up to the horizon).
    counts: HashMap<Window, u64>,
    active: Vec<(JobId, Window)>,
    next_id: u64,
}

impl ChurnGenerator {
    /// New generator with **explicit, deterministic seeding**: all
    /// randomness comes from a `StdRng` seeded with `seed` via
    /// `SeedableRng::seed_from_u64`, and nothing else (no time, no
    /// thread-local entropy). Two generators built with equal `cfg` and
    /// equal `seed` therefore emit byte-identical request streams, which
    /// is what makes old-vs-new perf A/Bs and the committed `BENCH_*`
    /// snapshots comparable across machines and PRs — every consumer
    /// (experiments, benches, property tests) passes a fixed literal
    /// seed. Picking a different `seed` yields an independent stream of
    /// the same shape.
    pub fn new(cfg: ChurnConfig, seed: u64) -> Self {
        assert!(cfg.horizon.is_power_of_two());
        assert!(cfg.gamma >= 1 && cfg.machines >= 1);
        assert!(!cfg.spans.is_empty());
        for &s in &cfg.spans {
            assert!(s >= 1 && s <= cfg.horizon, "span {s} outside horizon");
        }
        ChurnGenerator {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            counts: HashMap::new(),
            active: Vec::new(),
            next_id: 0,
        }
    }

    /// Currently active jobs (id, original window).
    pub fn active(&self) -> &[(JobId, Window)] {
        &self.active
    }

    fn ancestors(&self, mut w: Window) -> Vec<Window> {
        let mut out = vec![w];
        while w.span() < self.cfg.horizon {
            match w.aligned_parent() {
                Some(p) if p.span() <= self.cfg.horizon => {
                    out.push(p);
                    w = p;
                }
                _ => break,
            }
        }
        out
    }

    fn budget_of(&self, w: Window) -> u64 {
        self.cfg.machines as u64 * w.span() / self.cfg.gamma
    }

    fn admissible(&self, effective: Window) -> bool {
        self.ancestors(effective)
            .into_iter()
            .all(|a| self.counts.get(&a).copied().unwrap_or(0) < self.budget_of(a))
    }

    fn charge(&mut self, effective: Window, delta: i64) {
        for a in self.ancestors(effective) {
            let c = self.counts.entry(a).or_insert(0);
            *c = c.checked_add_signed(delta).expect("count underflow");
            if *c == 0 {
                self.counts.remove(&a);
            }
        }
    }

    /// Tries to produce the next request; `None` if sampling failed (the
    /// instance is saturated at this density and nothing can be deleted).
    pub fn next_request(&mut self) -> Option<Request> {
        let want_insert = self.active.len() < self.cfg.target_active
            && (self.active.is_empty() || self.rng.gen_bool(self.cfg.insert_bias));
        if want_insert {
            for _ in 0..64 {
                let span = self.cfg.spans[self.rng.gen_range(0..self.cfg.spans.len())];
                let window = if self.cfg.unaligned {
                    let start = self.rng.gen_range(0..=(self.cfg.horizon - span));
                    Window::with_span(start, span)
                } else {
                    let start = self.rng.gen_range(0..(self.cfg.horizon / span)) * span;
                    Window::with_span(start, span)
                };
                let effective = window.aligned_subwindow();
                if !self.admissible(effective) {
                    continue;
                }
                self.charge(effective, 1);
                let id = JobId(self.next_id);
                self.next_id += 1;
                self.active.push((id, window));
                return Some(Request::Insert { id, window });
            }
            // Fall through to a delete if sampling kept failing.
        }
        if self.active.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..self.active.len());
        let (id, window) = self.active.swap_remove(idx);
        self.charge(window.aligned_subwindow(), -1);
        Some(Request::Delete { id })
    }

    /// Generates a sequence of up to `len` requests.
    pub fn generate(&mut self, len: usize) -> RequestSeq {
        let mut seq = RequestSeq::new();
        for _ in 0..len {
            match self.next_request() {
                Some(r) => {
                    seq.push(r);
                }
                None => break,
            }
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::feasibility::{aligned_density_max_gamma, gamma_underallocated_blocked};
    use realloc_core::Job;
    use std::collections::BTreeMap;

    #[test]
    fn same_seed_same_stream() {
        // Regression guard for the determinism contract documented on
        // `ChurnGenerator::new` (old-vs-new perf A/Bs replay the same
        // stream through two scheduler builds): equal config + equal
        // seed ⇒ identical request streams, across both alignment modes
        // and under incremental (`next_request`) consumption.
        for unaligned in [false, true] {
            let cfg = ChurnConfig {
                unaligned,
                target_active: 64,
                ..ChurnConfig::default()
            };
            let a = ChurnGenerator::new(cfg.clone(), 42).generate(600);
            let b = ChurnGenerator::new(cfg.clone(), 42).generate(600);
            assert_eq!(a.requests(), b.requests(), "unaligned={unaligned}");
            // Incremental consumption sees the same stream too.
            let mut inc = ChurnGenerator::new(cfg.clone(), 42);
            let stepped: Vec<Request> = std::iter::from_fn(|| inc.next_request())
                .take(600)
                .collect();
            assert_eq!(a.requests(), &stepped[..], "unaligned={unaligned}");
            // And a different seed actually changes the stream.
            let c = ChurnGenerator::new(cfg, 43).generate(600);
            assert_ne!(a.requests(), c.requests(), "unaligned={unaligned}");
        }
    }

    #[test]
    fn generated_sequences_are_wellformed() {
        let mut g = ChurnGenerator::new(ChurnConfig::default(), 1);
        let seq = g.generate(500);
        assert!(seq.len() >= 400);
        seq.validate().expect("insert/delete pairing");
    }

    #[test]
    fn density_certified_at_every_prefix() {
        let cfg = ChurnConfig {
            gamma: 8,
            target_active: 64,
            horizon: 1 << 12,
            ..ChurnConfig::default()
        };
        let mut g = ChurnGenerator::new(cfg, 7);
        let seq = g.generate(400);
        let mut active: BTreeMap<JobId, Window> = BTreeMap::new();
        for r in seq.iter() {
            match *r {
                Request::Insert { id, window } => {
                    active.insert(id, window);
                }
                Request::Delete { id } => {
                    active.remove(&id);
                }
            }
            let aligned: Vec<Window> = active.values().map(|w| w.aligned_subwindow()).collect();
            assert!(
                aligned_density_max_gamma(&aligned, 1) >= 8,
                "prefix lost 8-density"
            );
        }
    }

    #[test]
    fn density_implies_blocked_underallocation() {
        // Empirical sanity for the Lemma 2 ⇒ feasibility direction on
        // aligned laminar instances (small sizes, exact check).
        let cfg = ChurnConfig {
            gamma: 8,
            target_active: 32,
            horizon: 1 << 10,
            spans: vec![1, 4, 16, 64],
            ..ChurnConfig::default()
        };
        let mut g = ChurnGenerator::new(cfg, 3);
        let _ = g.generate(300);
        let jobs: Vec<Job> = g
            .active()
            .iter()
            .map(|&(id, w)| Job::unit(id.0, w.aligned_subwindow()))
            .collect();
        assert!(
            gamma_underallocated_blocked(&jobs, 1, 4),
            "8-dense aligned instance should be ≥4-blocked-underallocated"
        );
    }

    #[test]
    fn unaligned_mode_emits_unaligned_windows() {
        let cfg = ChurnConfig {
            unaligned: true,
            spans: vec![3, 5, 7, 12],
            target_active: 40,
            ..ChurnConfig::default()
        };
        let mut g = ChurnGenerator::new(cfg, 11);
        let seq = g.generate(200);
        let any_unaligned = seq.iter().any(|r| match r {
            Request::Insert { window, .. } => !window.is_aligned(),
            _ => false,
        });
        assert!(any_unaligned);
    }

    #[test]
    fn hovers_near_target() {
        let cfg = ChurnConfig {
            target_active: 50,
            horizon: 1 << 12,
            ..ChurnConfig::default()
        };
        let mut g = ChurnGenerator::new(cfg, 5);
        let _ = g.generate(2000);
        assert!(g.active().len() <= 50);
        assert!(
            g.active().len() >= 10,
            "churn collapsed: {}",
            g.active().len()
        );
    }
}
