//! Themed workload presets.
//!
//! These wrap [`crate::churn::ChurnGenerator`] with parameters that mirror
//! the motivating settings from the paper's introduction: appointment
//! booking with reschedule-averse patients, and machine scheduling in a
//! shared compute cluster.

use crate::churn::{ChurnConfig, ChurnGenerator};
use crate::feed::TenantFeed;

/// The doctor's office of paper §1: a working horizon of `days` days of 32
/// quarter-hour slots each, patients asking for appointment windows from a
/// single slot up to half a day, arbitrary (unaligned) start times, about
/// 20% cancellations (modelled by the churn's delete share), and enough
/// slack that the office can always say yes (`γ = 8` density).
pub fn doctors_office(days: u64, seed: u64) -> ChurnGenerator {
    let horizon = (days * 32).next_power_of_two();
    ChurnGenerator::new(
        ChurnConfig {
            machines: 1,
            gamma: 8,
            horizon,
            spans: vec![1, 2, 4, 8, 16],
            target_active: (horizon / 16) as usize,
            insert_bias: 0.8,
            unaligned: true,
        },
        seed,
    )
}

/// A batch cluster: `machines` identical workers, jobs with SLA windows
/// from minutes (span 64) to a day (span 4096) on a one-slot-per-minute
/// axis, heavy churn around a steady backlog, moderate slack (`γ = 16`).
pub fn cloud_cluster(machines: usize, seed: u64) -> ChurnGenerator {
    ChurnGenerator::new(
        ChurnConfig {
            machines,
            gamma: 16,
            horizon: 1 << 16,
            spans: vec![64, 128, 256, 1024, 4096],
            target_active: machines * 256,
            insert_bias: 0.55,
            unaligned: true,
        },
        seed,
    )
}

/// A train station (cf. the robust-timetabling literature the paper cites):
/// `platforms` platforms, arrivals needing one slot inside tight windows
/// (a few minutes of allowed shift), very high occupancy pressure — the
/// low-γ regime where the γ ablation (E10) operates.
pub fn train_station(platforms: usize, seed: u64) -> ChurnGenerator {
    ChurnGenerator::new(
        ChurnConfig {
            machines: platforms,
            gamma: 4,
            horizon: 1 << 12,
            spans: vec![2, 4, 8],
            target_active: platforms * 256,
            insert_bias: 0.7,
            unaligned: true,
        },
        seed,
    )
}

/// The whale tenant id every [`hotspot`] feed uses.
pub const HOTSPOT_WHALE: u16 = 1;

/// A skewed-tenant hotspot: one **whale** tenant (id
/// [`HOTSPOT_WHALE`]) whose active set dwarfs everyone else's, plus
/// `dwarfs` small tenants (ids `2..2+dwarfs`). The whale's stream is
/// density-certified for a *single* machine, so a serving engine can
/// always isolate it onto one dedicated shard — exactly the shape that
/// makes tenant-aware rebalancing observable: under plain hash routing
/// the whale's jobs spread across every shard and consume every shard's
/// density budget; after a rebalance pins it, the hash shards belong to
/// the small tenants again.
///
/// Round-robin draws (see [`TenantFeed::next_batch`]) keep all streams
/// interleaved; the skew comes from the whale's much larger steady-state
/// target and insert bias, not from request-rate asymmetry.
pub fn hotspot(dwarfs: usize, seed: u64) -> TenantFeed {
    assert!(dwarfs >= 1, "a hotspot needs someone to crowd");
    let mut streams = vec![(
        HOTSPOT_WHALE,
        ChurnGenerator::new(
            ChurnConfig {
                machines: 1,
                gamma: 8,
                horizon: 1 << 12,
                spans: vec![1, 4, 16, 64],
                target_active: 240,
                insert_bias: 0.85,
                unaligned: false,
            },
            seed,
        ),
    )];
    for d in 0..dwarfs {
        streams.push((
            HOTSPOT_WHALE + 1 + d as u16,
            ChurnGenerator::new(
                ChurnConfig {
                    machines: 1,
                    gamma: 8,
                    horizon: 1 << 12,
                    spans: vec![1, 4, 16],
                    target_active: 12,
                    insert_bias: 0.6,
                    unaligned: false,
                },
                seed.wrapping_mul(31).wrapping_add(d as u64 + 1),
            ),
        ));
    }
    TenantFeed::new(streams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::Request;

    #[test]
    fn doctors_office_generates() {
        let mut g = doctors_office(8, 1);
        let seq = g.generate(300);
        seq.validate().unwrap();
        assert!(seq.len() >= 200);
        assert!(seq.max_span() <= 16);
    }

    #[test]
    fn train_station_generates() {
        let mut g = train_station(3, 4);
        let seq = g.generate(800);
        seq.validate().unwrap();
        assert!(seq.max_span() <= 8);
        assert!(seq.len() > 500);
    }

    #[test]
    fn hotspot_skews_toward_the_whale() {
        let mut feed = hotspot(4, 9);
        assert_eq!(feed.tenants(), 5);
        let mut active: std::collections::HashMap<u16, i64> = Default::default();
        for _ in 0..40 {
            let Some(batch) = feed.next_batch(8) else {
                break;
            };
            for (tenant, r) in batch {
                *active.entry(tenant).or_insert(0) += match r {
                    Request::Insert { .. } => 1,
                    Request::Delete { .. } => -1,
                };
            }
        }
        let whale = active[&HOTSPOT_WHALE];
        let total: i64 = active.values().sum();
        assert!(
            whale * 2 > total,
            "whale holds {whale} of {total} active jobs — not dominant"
        );
        assert!(
            active.iter().all(|(&t, &n)| t == HOTSPOT_WHALE || n <= 16),
            "dwarfs stayed small: {active:?}"
        );
    }

    #[test]
    fn cloud_cluster_generates() {
        let mut g = cloud_cluster(4, 2);
        let seq = g.generate(2000);
        seq.validate().unwrap();
        // insert_bias 0.55 grows the active set by ~0.1 per request.
        assert!(seq.peak_active() > 120, "peak {}", seq.peak_active());
    }
}
