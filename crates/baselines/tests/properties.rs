//! Property-based tests for the baseline schedulers.

use proptest::prelude::*;
use realloc_baselines::{EdfRescheduler, LlfRescheduler, NaivePeckingScheduler, SizedEdfScheduler};
use realloc_core::{Job, JobId, Reallocator, SingleMachineReallocator, Window};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// EDF and LLF accept exactly the same instances (unit jobs: identical
    /// feasibility) and both always hold feasible schedules.
    #[test]
    fn edf_llf_acceptance_agrees(
        jobs in prop::collection::vec((0u64..48, 1u64..16), 1..30),
    ) {
        let mut edf = EdfRescheduler::new(1);
        let mut llf = LlfRescheduler::new(1);
        for (i, &(a, s)) in jobs.iter().enumerate() {
            let id = JobId(i as u64);
            let w = Window::with_span(a, s);
            let e = edf.insert(id, w).is_ok();
            let l = llf.insert(id, w).is_ok();
            prop_assert_eq!(e, l, "EDF/LLF acceptance diverged on {} {}", id, w);
        }
        prop_assert_eq!(edf.active_count(), llf.active_count());
        // Both schedules feasible (collision-free, in-window).
        for sched in [&edf.snapshot(), &llf.snapshot()] {
            let mut seen = std::collections::HashSet::new();
            for (_, p) in sched.iter() {
                prop_assert!(seen.insert((p.machine, p.slot)));
            }
        }
    }

    /// The naive scheduler accepts whenever EDF does, on aligned instances
    /// inserted in any order (Lemma 4: it serves every feasible sequence of
    /// recursively aligned requests).
    #[test]
    fn naive_accepts_every_feasible_aligned_sequence(
        jobs in prop::collection::vec((0u64..64u64, 0u32..5), 1..40),
    ) {
        let mut naive = NaivePeckingScheduler::new();
        let mut oracle = EdfRescheduler::new(1);
        for (i, &(start, exp)) in jobs.iter().enumerate() {
            let id = JobId(i as u64);
            let span = 1u64 << exp;
            let w = Window::aligned_enclosing(start, span);
            let feasible = oracle.insert(id, w).is_ok();
            let accepted = naive.insert(id, w).is_ok();
            prop_assert_eq!(
                accepted, feasible,
                "naive {} a feasible={} aligned insert {} {}",
                if accepted { "accepted" } else { "rejected" }, feasible, id, w
            );
        }
        // Schedule feasible.
        let mut seen = std::collections::HashSet::new();
        for (_, slot) in naive.assignments() {
            prop_assert!(seen.insert(slot));
        }
    }

    /// Sized-EDF schedules never overlap and respect windows.
    #[test]
    fn sized_edf_schedules_are_valid(
        jobs in prop::collection::vec((0u64..32, 1u64..6, 1u64..4), 1..15),
        machines in 1usize..3,
    ) {
        let mut s = SizedEdfScheduler::new(machines);
        let mut sizes = std::collections::HashMap::new();
        let mut windows = std::collections::HashMap::new();
        for (i, &(a, extra, k)) in jobs.iter().enumerate() {
            let id = JobId(i as u64);
            let w = Window::new(a, a + k + extra);
            if s.insert_job(Job::sized(id.0, w, k)).is_ok() {
                sizes.insert(id, k);
                windows.insert(id, w);
            }
        }
        // Non-overlap per machine; runs within windows.
        let snap = s.snapshot();
        let mut runs: Vec<(usize, u64, u64)> = snap
            .iter()
            .map(|(id, p)| (p.machine, p.slot, p.slot + sizes[&id]))
            .collect();
        runs.sort();
        for pair in runs.windows(2) {
            let (m1, _, e1) = pair[0];
            let (m2, s2, _) = pair[1];
            prop_assert!(m1 != m2 || e1 <= s2, "overlapping runs");
        }
        for (id, p) in snap.iter() {
            let w = windows[&id];
            prop_assert!(p.slot >= w.start() && p.slot + sizes[&id] <= w.end());
        }
    }
}
