//! The offline optimum, used as feasibility oracle by harnesses and tests.
//!
//! For unit jobs with integer windows on identical machines, greedy EDF is
//! an exact offline algorithm, so "optimal" here means: schedules exactly
//! the feasible instances (`realloc_core::feasibility::edf_schedule`).
//! This module adds convenience measurements on top.

use realloc_core::feasibility::{edf_feasible, gamma_underallocated_blocked};
use realloc_core::{Job, ScheduleSnapshot};

/// Offline-schedules the job set; `None` when infeasible.
pub fn optimal_schedule(jobs: &[Job], machines: usize) -> Option<ScheduleSnapshot> {
    realloc_core::feasibility::edf_schedule(jobs, machines)
}

/// The largest integer `γ` (up to `limit`) for which the instance is
/// verifiably `γ`-underallocated by the blocked-start sufficient test.
/// Returns 0 when the instance is not even feasible.
pub fn max_verified_gamma(jobs: &[Job], machines: usize, limit: u64) -> u64 {
    if !edf_feasible(jobs, machines) {
        return 0;
    }
    let mut best = 1;
    for gamma in 2..=limit {
        if gamma_underallocated_blocked(jobs, machines, gamma) {
            best = gamma;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::Window;

    #[test]
    fn gamma_measurement_matches_construction() {
        // 2 jobs spread over a span-16 window: γ up to 8 on one machine.
        let jobs = vec![
            Job::unit(1, Window::new(0, 16)),
            Job::unit(2, Window::new(0, 16)),
        ];
        assert_eq!(max_verified_gamma(&jobs, 1, 64), 8);
    }

    #[test]
    fn infeasible_reports_zero() {
        let jobs = vec![
            Job::unit(1, Window::new(0, 1)),
            Job::unit(2, Window::new(0, 1)),
        ];
        assert_eq!(max_verified_gamma(&jobs, 1, 8), 0);
    }

    #[test]
    fn optimal_schedules_feasible_sets() {
        let jobs: Vec<Job> = (0..10)
            .map(|i| Job::unit(i, Window::new(i, i + 2)))
            .collect();
        assert!(optimal_schedule(&jobs, 1).is_some());
    }
}
