//! Least-laxity-first with full recomputation.
//!
//! At each slot `t`, among released unscheduled jobs the `m` with the least
//! *laxity* — `(d_j − 1) − t`, the slack before the job's last admissible
//! slot — are run. For unit jobs laxity ordering at a fixed `t` coincides
//! with deadline ordering, so LLF is EDF with a different tie-break (we
//! break laxity ties by *later arrival first*, the opposite of our EDF's
//! id order). The paper cites LLF alongside EDF as a classical policy whose
//! schedules are brittle under insertion/deletion; the toggle experiments
//! show the same `Θ(n)` cascades for both.

use crate::edf::read_recompute_state;
use realloc_core::cost::Placement;
use realloc_core::snapshot::{Restorable, SnapshotNode, SnapshotWriter};
use realloc_core::textio::ParseError;
use realloc_core::{Error, JobId, Reallocator, RequestOutcome, ScheduleSnapshot, Window};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Full-recompute LLF rescheduler on `m` machines, arbitrary windows.
#[derive(Clone, Debug)]
pub struct LlfRescheduler {
    machines: usize,
    active: BTreeMap<JobId, Window>,
    schedule: ScheduleSnapshot,
}

impl LlfRescheduler {
    /// New rescheduler on `machines ≥ 1` machines.
    pub fn new(machines: usize) -> Self {
        assert!(machines >= 1);
        LlfRescheduler {
            machines,
            active: BTreeMap::new(),
            schedule: ScheduleSnapshot::new(),
        }
    }

    /// Greedy LLF sweep; `None` if some job misses its deadline.
    fn llf_schedule(&self) -> Option<ScheduleSnapshot> {
        let mut by_arrival: Vec<(JobId, Window)> =
            self.active.iter().map(|(&id, &w)| (id, w)).collect();
        by_arrival.sort_by_key(|&(id, w)| (w.start(), id));

        // Min-heap on (laxity ≡ deadline, Reverse(arrival), id).
        let mut ready: BinaryHeap<Reverse<(u64, Reverse<u64>, u64)>> = BinaryHeap::new();
        let mut next = 0usize;
        let mut snapshot = ScheduleSnapshot::new();
        let mut t = by_arrival.first()?.1.start();
        let total = by_arrival.len();
        let mut done = 0usize;
        while done < total {
            if ready.is_empty() && next < total {
                t = t.max(by_arrival[next].1.start());
            }
            while next < total && by_arrival[next].1.start() <= t {
                let (id, w) = by_arrival[next];
                ready.push(Reverse((w.end(), Reverse(w.start()), id.0)));
                next += 1;
            }
            for machine in 0..self.machines {
                let Some(Reverse((deadline, _, id))) = ready.pop() else {
                    break;
                };
                if t >= deadline {
                    return None;
                }
                snapshot.set(JobId(id), Placement { machine, slot: t });
                done += 1;
            }
            t += 1;
        }
        Some(snapshot)
    }

    fn recompute(&mut self, failing_job: JobId) -> Result<RequestOutcome, Error> {
        if self.active.is_empty() {
            let moves = self.schedule.diff(&ScheduleSnapshot::new());
            self.schedule = ScheduleSnapshot::new();
            return Ok(RequestOutcome { moves });
        }
        let fresh = self.llf_schedule().ok_or(Error::CapacityExhausted {
            job: failing_job,
            detail: "LLF: no feasible schedule for the active set".into(),
        })?;
        let moves = self.schedule.diff(&fresh);
        self.schedule = fresh;
        Ok(RequestOutcome { moves })
    }
}

impl Restorable for LlfRescheduler {
    const SNAPSHOT_KIND: &'static str = "llf";

    fn write_state(&self, w: &mut SnapshotWriter) {
        // As with EDF: the schedule is a pure function of the active
        // set, so machine count plus active windows are the whole state.
        w.line(format_args!("m {}", self.machines));
        for (&id, &win) in &self.active {
            w.line(format_args!("j {} {} {}", id.0, win.start(), win.end()));
        }
    }

    fn read_state(node: &SnapshotNode) -> Result<Self, ParseError> {
        node.expect_kind(Self::SNAPSHOT_KIND)?;
        let (machines, active) = read_recompute_state(node, "llf")?;
        let mut s = LlfRescheduler::new(machines);
        s.active = active;
        if !s.active.is_empty() {
            s.schedule = s.llf_schedule().ok_or(ParseError {
                line: 0,
                message: "llf snapshot's active set is infeasible".to_string(),
            })?;
        }
        Ok(s)
    }
}

impl Reallocator for LlfRescheduler {
    fn machines(&self) -> usize {
        self.machines
    }

    fn insert(&mut self, id: JobId, window: Window) -> Result<RequestOutcome, Error> {
        if self.active.contains_key(&id) {
            return Err(Error::DuplicateJob(id));
        }
        self.active.insert(id, window);
        match self.recompute(id) {
            Ok(out) => Ok(out),
            Err(e) => {
                self.active.remove(&id);
                Err(e)
            }
        }
    }

    fn delete(&mut self, id: JobId) -> Result<RequestOutcome, Error> {
        if self.active.remove(&id).is_none() {
            return Err(Error::UnknownJob(id));
        }
        self.recompute(id)
    }

    fn snapshot(&self) -> ScheduleSnapshot {
        self.schedule.clone()
    }

    fn active_count(&self) -> usize {
        self.active.len()
    }

    fn name(&self) -> &'static str {
        "llf-recompute"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::schedule::validate;

    #[test]
    fn schedules_are_feasible() {
        let mut s = LlfRescheduler::new(2);
        for j in 0..6u64 {
            s.insert(JobId(j), Window::new(j / 2, j / 2 + 3)).unwrap();
        }
        validate(&s.snapshot(), &s.active, 2).unwrap();
        s.delete(JobId(3)).unwrap();
        validate(&s.snapshot(), &s.active, 2).unwrap();
    }

    #[test]
    fn equivalent_feasibility_to_edf() {
        // LLF (unit jobs) accepts exactly the feasible instances.
        let mut s = LlfRescheduler::new(1);
        s.insert(JobId(1), Window::new(0, 1)).unwrap();
        assert!(s.insert(JobId(2), Window::new(0, 1)).is_err());
        assert_eq!(s.active_count(), 1);
    }

    #[test]
    fn toggle_instance_cascades() {
        let eta = 16u64;
        let mut s = LlfRescheduler::new(1);
        for j in 0..eta {
            s.insert(JobId(j), Window::new(j, j + 2)).unwrap();
        }
        let a = s
            .insert(JobId(1000), Window::new(0, 1))
            .unwrap()
            .netted()
            .reallocation_cost();
        s.delete(JobId(1000)).unwrap();
        let b = s
            .insert(JobId(1001), Window::new(eta, eta + 1))
            .unwrap()
            .netted()
            .reallocation_cost();
        assert!(a + b >= eta / 2, "LLF should cascade: {a} + {b}");
    }
}
