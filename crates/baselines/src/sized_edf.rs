//! A rescheduler for jobs of integer size `k ≥ 1` — the substrate for the
//! Observation 13 experiment.
//!
//! The paper's reallocation scheduler is unit-size only; Observation 13
//! shows why: with sizes `{1, k}` *any* scheduler can be forced into
//! `Ω(kn)` aggregate reallocation cost by sliding a single size-`k` job
//! across a window shared with `k` unit jobs. This module provides an
//! honest size-aware scheduler to run that construction against: greedy
//! earliest-deadline-first over contiguous free runs, recomputed per
//! request, with costs measured as schedule diffs (a sized job's placement
//! is its start slot; moving any job counts once).
//!
//! Non-preemptive scheduling of sized jobs is NP-hard in general, so the
//! greedy may reject feasible instances; the Observation 13 instances are
//! deliberately easy (the greedy always finds the packing), which is all
//! the lower-bound experiment needs.

use realloc_core::cost::Placement;
use realloc_core::{Error, Job, JobId, RequestOutcome, ScheduleSnapshot, Window};
use std::collections::BTreeMap;

/// Greedy EDF rescheduler for sized jobs (non-preemptive, contiguous).
#[derive(Clone, Debug)]
pub struct SizedEdfScheduler {
    machines: usize,
    active: BTreeMap<JobId, (Window, u64)>,
    schedule: ScheduleSnapshot,
}

impl SizedEdfScheduler {
    /// New scheduler on `machines ≥ 1` machines.
    pub fn new(machines: usize) -> Self {
        assert!(machines >= 1);
        SizedEdfScheduler {
            machines,
            active: BTreeMap::new(),
            schedule: ScheduleSnapshot::new(),
        }
    }

    /// Greedy packing: jobs by (deadline, larger first), each placed at the
    /// earliest feasible start on the machine with the earliest fit.
    fn pack(&self) -> Option<ScheduleSnapshot> {
        let mut jobs: Vec<(JobId, Window, u64)> = self
            .active
            .iter()
            .map(|(&id, &(w, k))| (id, w, k))
            .collect();
        jobs.sort_by_key(|&(id, w, k)| (w.end(), std::cmp::Reverse(k), id));

        // Per machine: occupied runs as (start -> end), kept disjoint.
        let mut runs: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); self.machines];
        let mut snapshot = ScheduleSnapshot::new();
        for (id, w, k) in jobs {
            let mut best: Option<(u64, usize)> = None; // (start, machine)
            for (m, occ) in runs.iter().enumerate() {
                if let Some(start) = earliest_fit(occ, w, k) {
                    if best.is_none_or(|(bs, _)| start < bs) {
                        best = Some((start, m));
                    }
                }
            }
            let (start, m) = best?;
            insert_run(&mut runs[m], start, start + k);
            snapshot.set(
                id,
                Placement {
                    machine: m,
                    slot: start,
                },
            );
        }
        Some(snapshot)
    }

    fn recompute(&mut self, failing_job: JobId) -> Result<RequestOutcome, Error> {
        let fresh = self.pack().ok_or(Error::CapacityExhausted {
            job: failing_job,
            detail: "sized-EDF: greedy packing failed".into(),
        })?;
        let moves = self.schedule.diff(&fresh);
        self.schedule = fresh;
        Ok(RequestOutcome { moves })
    }

    /// Inserts a sized job.
    pub fn insert_job(&mut self, job: Job) -> Result<RequestOutcome, Error> {
        if self.active.contains_key(&job.id) {
            return Err(Error::DuplicateJob(job.id));
        }
        if job.window.span() < job.size {
            return Err(Error::UnsupportedJob {
                job: job.id,
                detail: format!(
                    "size {} exceeds window span {}",
                    job.size,
                    job.window.span()
                ),
            });
        }
        self.active.insert(job.id, (job.window, job.size));
        match self.recompute(job.id) {
            Ok(out) => Ok(out),
            Err(e) => {
                self.active.remove(&job.id);
                Err(e)
            }
        }
    }

    /// Deletes a job.
    pub fn delete_job(&mut self, id: JobId) -> Result<RequestOutcome, Error> {
        if self.active.remove(&id).is_none() {
            return Err(Error::UnknownJob(id));
        }
        self.recompute(id)
    }

    /// The current schedule (placement = start slot of each job).
    pub fn snapshot(&self) -> ScheduleSnapshot {
        self.schedule.clone()
    }

    /// Number of active jobs.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }
}

/// Earliest start `≥ w.start()` with `k` contiguous free slots ending by
/// `w.end()`, given the machine's occupied runs.
fn earliest_fit(occ: &BTreeMap<u64, u64>, w: Window, k: u64) -> Option<u64> {
    let mut candidate = w.start();
    // Clamp the candidate past any run overlapping it, left to right.
    for (&start, &end) in occ.range(..w.end()) {
        if end <= candidate {
            continue;
        }
        if start >= candidate + k {
            break; // gap [candidate, start) is big enough
        }
        candidate = end;
    }
    (candidate + k <= w.end()).then_some(candidate)
}

/// Inserts the run `[start, end)`, coalescing with neighbours.
fn insert_run(occ: &mut BTreeMap<u64, u64>, mut start: u64, mut end: u64) {
    // Coalesce left.
    if let Some((&ls, &le)) = occ.range(..=start).next_back() {
        debug_assert!(le <= start, "overlapping runs");
        if le == start {
            occ.remove(&ls);
            start = ls;
        }
    }
    // Coalesce right.
    if let Some(&re) = occ.get(&end) {
        occ.remove(&end);
        end = re;
    }
    occ.insert(start, end);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_fit_respects_runs() {
        let mut occ = BTreeMap::new();
        insert_run(&mut occ, 2, 4);
        assert_eq!(earliest_fit(&occ, Window::new(0, 8), 2), Some(0));
        assert_eq!(earliest_fit(&occ, Window::new(0, 8), 3), Some(4));
        assert_eq!(earliest_fit(&occ, Window::new(2, 4), 1), None);
        assert_eq!(earliest_fit(&occ, Window::new(0, 4), 2), Some(0));
    }

    #[test]
    fn run_coalescing() {
        let mut occ = BTreeMap::new();
        insert_run(&mut occ, 0, 2);
        insert_run(&mut occ, 4, 6);
        insert_run(&mut occ, 2, 4);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[&0], 6);
    }

    #[test]
    fn schedules_mixed_sizes() {
        let mut s = SizedEdfScheduler::new(1);
        s.insert_job(Job::sized(1, Window::new(0, 8), 4)).unwrap();
        s.insert_job(Job::sized(2, Window::new(0, 8), 2)).unwrap();
        s.insert_job(Job::unit(3, Window::new(0, 8))).unwrap();
        assert_eq!(s.active_count(), 3);
        // All placed without overlap: total size 7 within 8 slots.
        let starts: Vec<_> = s.snapshot().iter().collect();
        assert_eq!(starts.len(), 3);
    }

    #[test]
    fn observation13_shape() {
        // m = 2γk slots, k unit jobs with window [0, m), one size-k job
        // sliding by k each toggle: each toggle forces ~k unit moves.
        let gamma = 2u64;
        let k = 8u64;
        let m = 2 * gamma * k;
        let mut s = SizedEdfScheduler::new(1);
        for i in 0..k {
            s.insert_job(Job::unit(i, Window::new(0, m))).unwrap();
        }
        let mut total = 0u64;
        let mut big = 1000u64;
        s.insert_job(Job::sized(big, Window::new(0, k), k)).unwrap();
        for pos in 1..(m / k) {
            let out = s.delete_job(JobId(big)).unwrap();
            total += out.netted().reallocation_cost();
            big += 1;
            let out = s
                .insert_job(Job::sized(big, Window::new(pos * k, (pos + 1) * k), k))
                .unwrap();
            total += out.netted().reallocation_cost();
        }
        // 2γ−1 = 3 toggles; each should move on the order of k unit jobs.
        assert!(
            total >= k,
            "sliding big job should displace unit jobs: {total}"
        );
    }
}
