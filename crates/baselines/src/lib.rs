//! # realloc-baselines
//!
//! Comparison schedulers for the reallocation experiments:
//!
//! * [`NaivePeckingScheduler`] — the paper's Lemma 4 baseline: greedy
//!   pecking-order with cascading displacement, `O(min{log n, log Δ})`
//!   reallocations per request on aligned instances (single machine);
//! * [`EdfRescheduler`] — classical earliest-deadline-first, recomputed
//!   from scratch on every request. Brittle: a single insert/delete can
//!   reshuffle `Θ(n)` jobs (paper §1, §4 and the Lemma 12 construction);
//! * [`LlfRescheduler`] — least-laxity-first recompute. For unit jobs at
//!   integer slots laxity ordering coincides with deadline ordering, so
//!   LLF differs from EDF only in tie-breaking — exactly the brittleness
//!   point the paper makes about both classical policies;
//! * [`offline`] — the offline optimum (greedy EDF is exact for unit
//!   jobs), used as the feasibility oracle in the harnesses;
//! * [`SizedEdfScheduler`] — a rescheduler for jobs of integer size
//!   `k ≥ 1`, used by the Observation 13 `Ω(kn)` lower-bound experiment
//!   (the paper's scheduler is unit-size only).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edf;
pub mod llf;
pub mod naive;
pub mod offline;
pub mod sized_edf;

pub use edf::EdfRescheduler;
pub use llf::LlfRescheduler;
pub use naive::NaivePeckingScheduler;
pub use sized_edf::SizedEdfScheduler;
