//! The naive pecking-order scheduler of paper §4, Lemma 4.
//!
//! > *"To insert a job `j` with span `2^i`, find any empty slot in `j`'s
//! > window, and place `j` there. Otherwise, select any job `k` currently
//! > scheduled in `j`'s window that has span `≥ 2^{i+1}` […] replace `k`
//! > with `j` and recursively insert `k`."*
//!
//! The cascade reallocates at most one job per distinct span, i.e.
//! `O(min{log n, log Δ})` per insert on recursively aligned instances.
//! Deletions cost nothing. This is the logarithmic baseline the
//! reservation scheduler improves to `O(log* ·)`.

use realloc_core::snapshot::{Fields, Restorable, SnapshotNode, SnapshotWriter};
use realloc_core::textio::ParseError;
use realloc_core::{Error, JobId, SingleMachineReallocator, Slot, SlotMove, Window};
use std::collections::{BTreeMap, HashMap};

/// Single-machine Lemma 4 baseline for aligned windows.
#[derive(Clone, Debug, Default)]
pub struct NaivePeckingScheduler {
    occupied: BTreeMap<Slot, JobId>,
    jobs: HashMap<JobId, (Window, Slot)>,
}

impl NaivePeckingScheduler {
    /// New, empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// First free slot in `w`, plus the best displacement victim (the
    /// occupant with the smallest span strictly larger than `w`'s, earliest
    /// slot breaking ties) — both found in one pass over the occupied slots
    /// of `w`.
    fn scan(&self, w: Window) -> (Option<Slot>, Option<(JobId, Window, Slot)>) {
        let mut expect = w.start();
        let mut free = None;
        let mut victim: Option<(JobId, Window, Slot)> = None;
        for (&s, &id) in self.occupied.range(w.start()..w.end()) {
            if free.is_none() && s > expect {
                free = Some(expect);
            }
            expect = s + 1;
            let (jw, _) = self.jobs[&id];
            if jw.span() > w.span() && victim.is_none_or(|(_, vw, _)| jw.span() < vw.span()) {
                victim = Some((id, jw, s));
            }
        }
        if free.is_none() && expect < w.end() {
            free = Some(expect);
        }
        (free, victim)
    }
}

impl Restorable for NaivePeckingScheduler {
    const SNAPSHOT_KIND: &'static str = "naive";

    fn write_state(&self, w: &mut SnapshotWriter) {
        // The occupied map is the whole state; `jobs` is its inverse
        // plus windows. One `j` line per job, in slot order.
        for (&slot, &id) in &self.occupied {
            let (win, _) = self.jobs[&id];
            w.line(format_args!(
                "j {} {} {} {slot}",
                id.0,
                win.start(),
                win.end()
            ));
        }
    }

    fn read_state(node: &SnapshotNode) -> Result<Self, ParseError> {
        node.expect_kind(Self::SNAPSHOT_KIND)?;
        let mut s = NaivePeckingScheduler::new();
        for (line, content) in &node.lines {
            let mut f = Fields::of(*line, content);
            match f.token("op")? {
                "j" => {
                    let id = JobId(f.u64("job id")?);
                    let start = f.u64("window start")?;
                    let end = f.u64("window end")?;
                    let slot = f.u64("slot")?;
                    f.finish()?;
                    if end <= start {
                        return Err(f.err(format!("window end {end} must exceed start {start}")));
                    }
                    let win = Window::new(start, end);
                    if !win.is_aligned() {
                        return Err(f.err(format!("window {win} is not aligned")));
                    }
                    if !win.contains_slot(slot) {
                        return Err(f.err(format!("job {id} at slot {slot} outside {win}")));
                    }
                    if s.jobs.insert(id, (win, slot)).is_some() {
                        return Err(f.err(format!("duplicate job {id}")));
                    }
                    if let Some(prev) = s.occupied.insert(slot, id) {
                        return Err(f.err(format!("slot {slot} held by both {prev} and {id}")));
                    }
                }
                other => {
                    return Err(ParseError {
                        line: *line,
                        message: format!("unknown naive snapshot op '{other}'"),
                    })
                }
            }
        }
        Ok(s)
    }
}

impl SingleMachineReallocator for NaivePeckingScheduler {
    fn insert(&mut self, id: JobId, window: Window) -> Result<Vec<SlotMove>, Error> {
        if self.jobs.contains_key(&id) {
            return Err(Error::DuplicateJob(id));
        }
        if !window.is_aligned() {
            return Err(Error::UnalignedWindow(window));
        }
        let mut moves = Vec::new();
        let mut cur_id = id;
        let mut cur_window = window;
        let mut from: Option<Slot> = None;
        loop {
            let (free, victim) = self.scan(cur_window);
            if let Some(slot) = free {
                self.occupied.insert(slot, cur_id);
                self.jobs.insert(cur_id, (cur_window, slot));
                moves.push(SlotMove {
                    job: cur_id,
                    from,
                    to: Some(slot),
                });
                return Ok(moves);
            }
            let Some((vid, vwindow, vslot)) = victim else {
                // Undo the partial cascade. The chain structure makes this
                // simple: every slot a mover took is the *next* victim's
                // original slot, so restoring each mover to its `from`
                // (reverse order) and finally the in-flight job to the slot
                // it was displaced from rewrites every touched slot exactly
                // once — no removals needed.
                for mv in moves.iter().rev() {
                    match mv.from {
                        Some(f) => {
                            self.occupied.insert(f, mv.job);
                            self.jobs.get_mut(&mv.job).expect("cascade job").1 = f;
                        }
                        None => {
                            self.jobs.remove(&mv.job);
                        }
                    }
                }
                if let Some(f) = from {
                    // The displaced job whose reinsertion failed: its jobs
                    // entry still names `f`; only the occupancy needs
                    // restoring.
                    debug_assert_eq!(self.jobs.get(&cur_id).map(|&(_, s)| s), Some(f));
                    self.occupied.insert(f, cur_id);
                }
                return Err(Error::CapacityExhausted {
                    job: cur_id,
                    detail: format!(
                        "naive cascade: window {cur_window} full with no longer-span occupant"
                    ),
                });
            };
            // Replace the victim and cascade it upward.
            self.occupied.insert(vslot, cur_id);
            self.jobs.insert(cur_id, (cur_window, vslot));
            moves.push(SlotMove {
                job: cur_id,
                from,
                to: Some(vslot),
            });
            cur_id = vid;
            cur_window = vwindow;
            from = Some(vslot);
        }
    }

    fn delete(&mut self, id: JobId) -> Result<Vec<SlotMove>, Error> {
        let (_, slot) = self.jobs.remove(&id).ok_or(Error::UnknownJob(id))?;
        self.occupied.remove(&slot);
        Ok(vec![SlotMove {
            job: id,
            from: Some(slot),
            to: None,
        }])
    }

    fn slot_of(&self, id: JobId) -> Option<Slot> {
        self.jobs.get(&id).map(|&(_, s)| s)
    }

    fn assignments(&self) -> Vec<(JobId, Slot)> {
        self.jobs.iter().map(|(&id, &(_, s))| (id, s)).collect()
    }

    fn active_count(&self) -> usize {
        self.jobs.len()
    }

    fn name(&self) -> &'static str {
        "naive-pecking"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_window_exactly() {
        let mut s = NaivePeckingScheduler::new();
        for i in 0..8u64 {
            s.insert(JobId(i), Window::new(0, 8)).unwrap();
        }
        assert!(matches!(
            s.insert(JobId(9), Window::new(0, 8)),
            Err(Error::CapacityExhausted { .. })
        ));
        assert_eq!(s.active_count(), 8);
    }

    #[test]
    fn cascade_displaces_longer_jobs() {
        let mut s = NaivePeckingScheduler::new();
        // Two span-4 jobs land in [0,4); two span-2 jobs then claim [0,2),
        // cascading the span-4 jobs into [2,4).
        s.insert(JobId(1), Window::new(0, 4)).unwrap();
        s.insert(JobId(2), Window::new(0, 4)).unwrap();
        let m3 = s.insert(JobId(3), Window::new(0, 2)).unwrap();
        let m4 = s.insert(JobId(4), Window::new(0, 2)).unwrap();
        // Each short insert displaces exactly one long job: two moves per
        // insert (the new placement plus one reallocation).
        assert_eq!(m3.len(), 2);
        assert_eq!(m4.len(), 2);
        assert_eq!(m3.iter().filter(|m| m.is_reallocation()).count(), 1);
        assert_eq!(m4.iter().filter(|m| m.is_reallocation()).count(), 1);
        let mut slots: Vec<_> = s.assignments().into_iter().map(|(_, sl)| sl).collect();
        slots.sort_unstable();
        assert_eq!(slots, vec![0, 1, 2, 3]);
        assert!(s.slot_of(JobId(3)).unwrap() < 2);
        assert!(s.slot_of(JobId(4)).unwrap() < 2);
    }

    #[test]
    fn cascade_length_bounded_by_distinct_spans() {
        let mut s = NaivePeckingScheduler::new();
        // Build a tower: spans 16, 8, 4, 2 nested at the left edge.
        s.insert(JobId(1), Window::new(0, 16)).unwrap();
        s.insert(JobId(2), Window::new(0, 8)).unwrap();
        s.insert(JobId(3), Window::new(0, 4)).unwrap();
        s.insert(JobId(4), Window::new(0, 2)).unwrap();
        // A span-1 job aimed at the occupied left edge cascades through at
        // most one job per distinct span.
        let m = s.insert(JobId(6), Window::new(0, 1)).unwrap();
        assert!(
            m.len() <= 5,
            "cascade of {} exceeds distinct spans",
            m.len()
        );
        assert!(
            m.len() >= 2,
            "the left edge is occupied; a cascade is forced"
        );
    }

    #[test]
    fn failed_insert_rolls_back() {
        let mut s = NaivePeckingScheduler::new();
        for i in 0..4u64 {
            s.insert(JobId(i), Window::new(0, 4)).unwrap();
        }
        let before = s.assignments();
        assert!(s.insert(JobId(9), Window::new(0, 2)).is_err());
        let mut after = s.assignments();
        let mut before = before;
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "failed insert must not change the schedule");
        assert_eq!(s.active_count(), 4);
    }

    #[test]
    fn delete_is_free() {
        let mut s = NaivePeckingScheduler::new();
        s.insert(JobId(1), Window::new(0, 4)).unwrap();
        s.insert(JobId(2), Window::new(0, 4)).unwrap();
        let m = s.delete(JobId(1)).unwrap();
        assert_eq!(m.len(), 1);
        assert!(m[0].to.is_none());
    }
}
