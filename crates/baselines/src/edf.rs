//! Earliest-deadline-first with full recomputation — the classical policy
//! whose *brittleness* motivates the paper (§1: "this brittleness is
//! certainly inherent to earliest-deadline-first (EDF) and least-laxity-
//! first (LLF) scheduling policies").
//!
//! On every request the whole schedule is recomputed by greedy EDF (exact
//! for unit jobs) and the reallocation cost is the honest diff against the
//! previous schedule. On adversarial instances such as the Lemma 12 toggle
//! this costs `Θ(n)` reallocations per request even though EDF always finds
//! a feasible schedule when one exists.

use realloc_core::feasibility::edf_schedule;
use realloc_core::snapshot::{Fields, Restorable, SnapshotNode, SnapshotWriter};
use realloc_core::textio::ParseError;
use realloc_core::{Error, Job, JobId, Reallocator, RequestOutcome, ScheduleSnapshot, Window};
use std::collections::BTreeMap;

/// Full-recompute EDF rescheduler on `m` machines, arbitrary windows.
#[derive(Clone, Debug)]
pub struct EdfRescheduler {
    machines: usize,
    active: BTreeMap<JobId, Window>,
    schedule: ScheduleSnapshot,
}

impl EdfRescheduler {
    /// New rescheduler on `machines ≥ 1` machines.
    pub fn new(machines: usize) -> Self {
        assert!(machines >= 1);
        EdfRescheduler {
            machines,
            active: BTreeMap::new(),
            schedule: ScheduleSnapshot::new(),
        }
    }

    fn recompute(&mut self, failing_job: JobId) -> Result<RequestOutcome, Error> {
        let jobs: Vec<Job> = self
            .active
            .iter()
            .map(|(&id, &w)| Job::unit(id.0, w))
            .collect();
        let fresh = edf_schedule(&jobs, self.machines).ok_or(Error::CapacityExhausted {
            job: failing_job,
            detail: "EDF: no feasible schedule for the active set".into(),
        })?;
        let moves = self.schedule.diff(&fresh);
        self.schedule = fresh;
        Ok(RequestOutcome { moves })
    }
}

impl Restorable for EdfRescheduler {
    const SNAPSHOT_KIND: &'static str = "edf";

    fn write_state(&self, w: &mut SnapshotWriter) {
        // The schedule is a pure function of the active set (every
        // mutation ends in a full recompute), so only machine count and
        // active windows need recording; restore re-derives the
        // schedule, and therefore all future diffs, exactly.
        w.line(format_args!("m {}", self.machines));
        for (&id, &win) in &self.active {
            w.line(format_args!("j {} {} {}", id.0, win.start(), win.end()));
        }
    }

    fn read_state(node: &SnapshotNode) -> Result<Self, ParseError> {
        node.expect_kind(Self::SNAPSHOT_KIND)?;
        let (machines, active) = read_recompute_state(node, "edf")?;
        let mut s = EdfRescheduler::new(machines);
        s.active = active;
        if !s.active.is_empty() {
            let jobs: Vec<Job> = s
                .active
                .iter()
                .map(|(&id, &w)| Job::unit(id.0, w))
                .collect();
            s.schedule = edf_schedule(&jobs, s.machines).ok_or(ParseError {
                line: 0,
                message: "edf snapshot's active set is infeasible".to_string(),
            })?;
        }
        Ok(s)
    }
}

/// Shared parser for the EDF/LLF full-recompute snapshots: one `m` line
/// plus `j` lines of active windows.
pub(crate) fn read_recompute_state(
    node: &SnapshotNode,
    what: &str,
) -> Result<(usize, BTreeMap<JobId, Window>), ParseError> {
    let mut machines: Option<usize> = None;
    let mut active: BTreeMap<JobId, Window> = BTreeMap::new();
    for (line, content) in &node.lines {
        let mut f = Fields::of(*line, content);
        match f.token("op")? {
            "m" => {
                if machines.is_some() {
                    return Err(f.err("duplicate 'm' line"));
                }
                let m = f.usize("machine count")?;
                f.finish()?;
                if m == 0 {
                    return Err(f.err("machine count must be >= 1"));
                }
                machines = Some(m);
            }
            "j" => {
                let id = JobId(f.u64("job id")?);
                let start = f.u64("window start")?;
                let end = f.u64("window end")?;
                f.finish()?;
                if end <= start {
                    return Err(f.err(format!("window end {end} must exceed start {start}")));
                }
                if active.insert(id, Window::new(start, end)).is_some() {
                    return Err(f.err(format!("duplicate job {id}")));
                }
            }
            other => {
                return Err(ParseError {
                    line: *line,
                    message: format!("unknown {what} snapshot op '{other}'"),
                })
            }
        }
    }
    let machines = machines.ok_or(ParseError {
        line: 0,
        message: format!("{what} snapshot has no 'm' machine-count line"),
    })?;
    Ok((machines, active))
}

impl Reallocator for EdfRescheduler {
    fn machines(&self) -> usize {
        self.machines
    }

    fn insert(&mut self, id: JobId, window: Window) -> Result<RequestOutcome, Error> {
        if self.active.contains_key(&id) {
            return Err(Error::DuplicateJob(id));
        }
        self.active.insert(id, window);
        match self.recompute(id) {
            Ok(out) => Ok(out),
            Err(e) => {
                self.active.remove(&id);
                Err(e)
            }
        }
    }

    fn delete(&mut self, id: JobId) -> Result<RequestOutcome, Error> {
        if self.active.remove(&id).is_none() {
            return Err(Error::UnknownJob(id));
        }
        // Deleting never makes an instance infeasible.
        self.recompute(id)
    }

    fn snapshot(&self) -> ScheduleSnapshot {
        self.schedule.clone()
    }

    fn active_count(&self) -> usize {
        self.active.len()
    }

    fn name(&self) -> &'static str {
        "edf-recompute"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::schedule::validate;

    #[test]
    fn maintains_feasible_schedules() {
        let mut s = EdfRescheduler::new(2);
        s.insert(JobId(1), Window::new(0, 2)).unwrap();
        s.insert(JobId(2), Window::new(0, 2)).unwrap();
        s.insert(JobId(3), Window::new(0, 2)).unwrap();
        s.insert(JobId(4), Window::new(1, 3)).unwrap();
        validate(&s.snapshot(), &s.active, 2).unwrap();
        s.delete(JobId(2)).unwrap();
        validate(&s.snapshot(), &s.active, 2).unwrap();
    }

    #[test]
    fn rejects_infeasible_insert_and_rolls_back() {
        let mut s = EdfRescheduler::new(1);
        s.insert(JobId(1), Window::new(0, 1)).unwrap();
        let before = s.snapshot();
        assert!(matches!(
            s.insert(JobId(2), Window::new(0, 1)),
            Err(Error::CapacityExhausted { .. })
        ));
        assert_eq!(s.active_count(), 1);
        assert_eq!(s.snapshot(), before);
    }

    #[test]
    fn toggle_instance_causes_linear_reallocation() {
        // The Lemma 12 shape: η jobs with windows [j, j+2); a unit-window
        // job at the front forces everyone right, deleting it and inserting
        // one at the back forces everyone left.
        let eta = 32u64;
        let mut s = EdfRescheduler::new(1);
        for j in 0..eta {
            s.insert(JobId(j), Window::new(j, j + 2)).unwrap();
        }
        let out = s.insert(JobId(1000), Window::new(0, 1)).unwrap();
        let first = out.netted().reallocation_cost();
        s.delete(JobId(1000)).unwrap();
        let out = s.insert(JobId(1001), Window::new(eta, eta + 1)).unwrap();
        let second = out.netted().reallocation_cost();
        // At least one of the two toggles must shift Ω(η) jobs.
        assert!(
            first + second >= eta / 2,
            "EDF should cascade on the toggle instance: {first} + {second}"
        );
    }

    #[test]
    fn outcome_reports_migrations() {
        let mut s = EdfRescheduler::new(2);
        for j in 0..4u64 {
            s.insert(JobId(j), Window::new(0, 2)).unwrap();
        }
        // Schedule is full on both machines; deleting one job and
        // reinserting with a tighter window reshuffles across machines.
        s.delete(JobId(0)).unwrap();
        let out = s.insert(JobId(9), Window::new(1, 2)).unwrap();
        assert!(out.migration_cost() <= out.reallocation_cost());
    }
}
