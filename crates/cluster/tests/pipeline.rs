//! Pipelined-link and quorum group-commit proofs.
//!
//! * the cumulative-ack machinery: a stalled replica turns a window of
//!   pipelined frames into **one** cumulative ack, backpressure on a
//!   full window is explicit (`try_send` refuses, `send` stalls and
//!   counts it), and the total drain wait is bounded and typed;
//! * the hostile-ack corpus: a peer that acks out of protocol —
//!   regressing, above the shipped window, unacked sequences, garbage,
//!   non-UTF-8, oversized frames — produces a located
//!   [`TransportError::Protocol`], never a panic, and never moves the
//!   link's honest `acked_seq`;
//! * the proptest: cutting the link with a **full window of unacked
//!   frames in flight** at an arbitrary stream position and promoting
//!   the replica loses zero acknowledged events and converges
//!   byte-identically with an uninterrupted reference;
//! * quorum group commit: commit acks once ≥ quorum replicas applied,
//!   a stalled replica neither blocks a met quorum nor sneaks into the
//!   committed floor, a lost quorum is typed with how close it got, and
//!   repair brings a dropped link back without duplicating state;
//! * flush coalescing on the primary: small batches defer up to
//!   `max_defer` flushes, barriers bypass.

use proptest::prelude::*;
use realloc_cluster::tcp::{LinkConfig, PrimaryLink, ReplicaServer};
use realloc_cluster::transport::{channel, FrameSink, TransportError};
use realloc_cluster::{Frame, GroupError, Primary, Replica, ReplicationGroup};
use realloc_core::snapshot::Restorable as _;
use realloc_core::textio::{read_frame, write_frame};
use realloc_core::{JobId, Request, Window};
use realloc_engine::{BackendKind, CoalesceConfig, Engine, EngineConfig};
use realloc_sim::harness::churn_seq;
use realloc_telemetry::{labeled, Telemetry};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn journaled_config(shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments: 2,
    }
}

/// Short timeouts so failure paths resolve in test time.
fn fast_config(window: usize) -> LinkConfig {
    LinkConfig {
        connect_timeout: Duration::from_secs(1),
        read_timeout: Duration::from_millis(50),
        write_timeout: Duration::from_secs(1),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
        reconnect_attempts: 2,
        window,
        drain_timeout: Duration::from_millis(400),
    }
}

/// A primary with its bootstrap and `n` single-insert flush frames.
fn seeded_primary(n: u64) -> (Primary, Vec<Frame>, Vec<Frame>) {
    let mut primary = Primary::new(Engine::new(journaled_config(2)), 1).unwrap();
    let (owed, boot) = primary.bootstrap();
    assert!(owed.is_empty());
    for i in 1..=n {
        primary.submit(Request::Insert {
            id: JobId(i),
            window: Window::new(i % 20, i % 20 + 3),
        });
        primary.flush();
    }
    let frames = primary.frames_since(0).expect("retained history");
    assert_eq!(frames.len() as u64, n);
    (primary, boot, frames)
}

fn counter(t: &Telemetry, name: &str) -> u64 {
    t.counter_value(name).unwrap_or(0)
}

fn gauge(t: &Telemetry, name: &str) -> u64 {
    t.gauge_value(name).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Pipelining: batched cumulative acks, backpressure, bounded drain.
// ---------------------------------------------------------------------------

/// A replica stalled under its lock turns a window of pipelined frames
/// into a single cumulative ack once released — observable in the
/// `cluster_ack_batch_size` histogram and the in-flight gauge.
#[test]
fn a_stalled_replica_batches_the_window_into_one_cumulative_ack() {
    let t = Telemetry::new();
    let (_primary, boot, frames) = seeded_primary(5);
    let server = ReplicaServer::bind("127.0.0.1:0", Replica::new()).unwrap();
    let mut link = PrimaryLink::connect_with(server.addr(), fast_config(8)).unwrap();
    link.attach_telemetry(&t);
    let label = link.peer().to_string();

    for f in &boot {
        link.send(f).unwrap();
    }
    assert_eq!(link.drain().unwrap(), Some(boot[0].seq));

    // Hold the replica lock: the handler blocks before applying frame
    // 1, so all five frames are on the wire when it gets to work — one
    // batch, one `ok 5`.
    let cell = server.replica();
    let guard = cell.lock().unwrap();
    for f in &frames {
        link.send(f).unwrap();
    }
    assert_eq!(link.in_flight(), 5);
    let inflight = labeled("cluster_link_window_inflight", "replica", &label);
    assert_eq!(gauge(&t, &inflight), 5);
    drop(guard);

    let last = frames.last().unwrap().seq;
    assert_eq!(link.drain().unwrap(), Some(last));
    assert_eq!(link.acked_seq(), Some(last));
    assert_eq!(link.in_flight(), 0);
    assert_eq!(gauge(&t, &inflight), 0);
    assert_eq!(
        gauge(&t, &labeled("cluster_link_acked_seq", "replica", &label)),
        last
    );
    // Two ack arrivals total: the bootstrap's, then one covering all 5.
    let batch = labeled("cluster_ack_batch_size", "replica", &label);
    assert_eq!(t.histogram_snapshot(&batch).map(|h| h.count()), Some(2));
    // Every retired frame got an RTT sample even though acks batched.
    let rtt = labeled("cluster_link_ack_rtt_nanos", "replica", &label);
    assert_eq!(t.histogram_snapshot(&rtt).map(|h| h.count()), Some(6));
}

/// With the window exhausted, `try_send` refuses with the typed
/// `WindowFull` (leaving the link healthy) while `send` stalls until an
/// ack frees a slot — and the stall is counted.
#[test]
fn a_full_window_refuses_try_send_and_stalls_send() {
    let t = Telemetry::new();
    let (_primary, boot, frames) = seeded_primary(4);
    let server = ReplicaServer::bind("127.0.0.1:0", Replica::new()).unwrap();
    let config = LinkConfig {
        window: 2,
        ..LinkConfig::default()
    };
    let mut link = PrimaryLink::connect_with(server.addr(), config).unwrap();
    link.attach_telemetry(&t);
    let label = link.peer().to_string();
    for f in &boot {
        link.send(f).unwrap();
    }
    link.drain().unwrap();

    // Stall the replica from another thread, releasing after a delay.
    let cell = server.replica();
    let (locked_tx, locked_rx) = mpsc::channel();
    let holder = std::thread::spawn(move || {
        let guard = cell.lock().unwrap();
        locked_tx.send(()).unwrap();
        std::thread::sleep(Duration::from_millis(200));
        drop(guard);
    });
    locked_rx.recv().unwrap();

    link.send(&frames[0]).unwrap();
    link.send(&frames[1]).unwrap();
    assert_eq!(link.in_flight(), 2);
    match link.try_send(&frames[2]) {
        Err(TransportError::WindowFull { window }) => assert_eq!(window, 2),
        other => panic!("full window must refuse try_send, got {other:?}"),
    }
    assert!(
        link.is_connected(),
        "WindowFull is not a connection failure"
    );

    // The blocking variant waits out the stall instead.
    link.send(&frames[2]).unwrap();
    link.send(&frames[3]).unwrap();
    assert_eq!(link.drain().unwrap(), Some(frames[3].seq));
    let stalls = labeled("cluster_link_backpressure_stalls_total", "replica", &label);
    assert!(counter(&t, &stalls) >= 1, "the stall is counted");
    holder.join().unwrap();
}

/// The drain timeout bounds the *total* pipeline wait and is typed and
/// counted — a peer that reads frames but never acks cannot wedge the
/// primary one read-timeout at a time.
#[test]
fn a_mute_peer_fails_the_drain_within_the_total_bound() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mute: JoinHandle<()> = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        // Read frames forever, never ack.
        while let Ok(Some(_)) = read_frame(&mut reader, 1 << 20) {}
    });

    let t = Telemetry::new();
    let (_primary, _boot, frames) = seeded_primary(3);
    let mut link = PrimaryLink::connect_with(addr, fast_config(4)).unwrap();
    link.attach_telemetry(&t);
    let label = link.peer().to_string();
    for f in &frames {
        link.send(f).unwrap();
    }
    let started = Instant::now();
    match link.drain() {
        Err(TransportError::DrainTimeout { waited, in_flight }) => {
            assert_eq!(waited, Duration::from_millis(400));
            assert_eq!(in_flight, 3);
        }
        other => panic!("mute peer must time the drain out, got {other:?}"),
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(300) && elapsed < Duration::from_secs(4),
        "total-bounded drain took {elapsed:?}"
    );
    assert!(!link.is_connected());
    let timeouts = labeled("cluster_link_drain_timeouts_total", "replica", &label);
    assert_eq!(counter(&t, &timeouts), 1);
    drop(link); // closes the socket; the mute peer sees EOF
    mute.join().unwrap();
}

// ---------------------------------------------------------------------------
// Hostile acks: located errors, no panics, honest window state.
// ---------------------------------------------------------------------------

/// A fake replica that reads `expect_frames` frames, writes the
/// scripted ack payloads (length-prefixed), then optionally dumps raw
/// bytes, and finally holds the connection open until the peer leaves.
fn scripted_acker(
    expect_frames: usize,
    acks: Vec<Vec<u8>>,
    raw_tail: Vec<u8>,
) -> (SocketAddr, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut write_half = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        for _ in 0..expect_frames {
            let _ = read_frame(&mut reader, 1 << 20);
        }
        for ack in &acks {
            let _ = write_frame(&mut write_half, ack);
        }
        let _ = write_half.write_all(&raw_tail);
        let _ = write_half.flush();
        // Stay connected until the primary hangs up.
        while let Ok(Some(_)) = read_frame(&mut reader, 1 << 20) {}
    });
    (addr, handle)
}

/// Ships two frames at a peer that answers with `acks` (+ `raw_tail`
/// bytes) and returns the drain error plus the link's post-mortem
/// `acked_seq`.
fn hostile_drain(acks: Vec<Vec<u8>>, raw_tail: Vec<u8>) -> (TransportError, Option<u64>) {
    let (addr, server) = scripted_acker(2, acks, raw_tail);
    let (_primary, _boot, frames) = seeded_primary(2);
    // A generous drain bound: these tests assert on the *located
    // error*, and a starved acker thread (the suite runs many-way
    // parallel, possibly on one core, alongside the CPU-heavy proptest)
    // must delay the verdict, not turn it into a timeout.
    let config = LinkConfig {
        drain_timeout: Duration::from_secs(60),
        ..fast_config(4)
    };
    let mut link = PrimaryLink::connect_with(addr, config).unwrap();
    // A pipelined error surfaces on whichever call touches the link
    // next: the second send's opportunistic pump may already see the
    // hostile ack, or it may wait for the drain. Either way it must be
    // the same located error.
    let err = link
        .send(&frames[0])
        .and_then(|()| link.send(&frames[1]))
        .and_then(|()| link.drain().map(|_| ()))
        .expect_err("hostile acks must fail the link");
    assert!(!link.is_connected(), "a protocol violation drops the conn");
    let acked = link.acked_seq();
    drop(link);
    server.join().unwrap();
    (err, acked)
}

fn assert_protocol(err: TransportError, needle: &str) {
    match err {
        TransportError::Protocol(detail) => assert!(
            detail.contains(needle),
            "located error should mention '{needle}': {detail}"
        ),
        other => panic!("expected a Protocol error about '{needle}', got {other:?}"),
    }
}

#[test]
fn a_regressing_cumulative_ack_is_rejected_after_the_honest_prefix() {
    // `ok 1` retires frame 1; a second `ok 1` moves the cumulative ack
    // backwards — rejected, but the honest ack survives the drop.
    let (err, acked) = hostile_drain(vec![b"ok 1".to_vec(), b"ok 1".to_vec()], vec![]);
    assert_protocol(err, "regressing ack 1");
    assert_eq!(acked, Some(1), "the honest prefix is kept");
}

#[test]
fn an_ack_above_the_shipped_window_is_rejected() {
    let (err, acked) = hostile_drain(vec![b"ok 9".to_vec()], vec![]);
    assert_protocol(err, "above the shipped window");
    assert_eq!(acked, None, "a lying ack never moves acked_seq");
}

#[test]
fn an_ack_for_an_unshipped_sequence_is_rejected() {
    // 0 is below everything in flight yet matches no shipped frame.
    let (err, acked) = hostile_drain(vec![b"ok 0".to_vec()], vec![]);
    assert_protocol(err, "matches no shipped frame");
    assert_eq!(acked, None);
}

#[test]
fn a_garbage_ack_line_is_rejected_without_panicking() {
    let (err, acked) = hostile_drain(vec![b"yeah whatever".to_vec()], vec![]);
    assert_protocol(err, "malformed ack line");
    assert_eq!(acked, None);
}

#[test]
fn an_unparsable_ack_sequence_is_rejected() {
    let (err, acked) = hostile_drain(vec![b"ok banana".to_vec()], vec![]);
    assert_protocol(err, "malformed ack sequence");
    assert_eq!(acked, None);
}

#[test]
fn a_non_utf8_ack_is_rejected() {
    let (err, acked) = hostile_drain(vec![vec![0xff, 0xfe, 0x80]], vec![]);
    assert_protocol(err, "not UTF-8");
    assert_eq!(acked, None);
}

#[test]
fn an_oversized_ack_frame_is_rejected_before_it_is_read() {
    // A raw header claiming a 1 MiB ack: the cap rejects it from the
    // length prefix alone — the body never needs to arrive.
    let mut tail = (1u32 << 20).to_be_bytes().to_vec();
    tail.extend_from_slice(b"oops");
    let (err, acked) = hostile_drain(vec![], tail);
    assert_protocol(err, "exceeds the 4096-byte cap");
    assert_eq!(acked, None);
}

/// A hostile ack that lands while `send` is *stalled on a full window*
/// must surface as the typed `Protocol` error from that very call —
/// never a panic. Regression guard for the `expect("live connection")`
/// that used to sit on the post-stall write path in `send_impl`: the
/// stall loop hands the link to ack processing, which on hostile input
/// drops the connection, and the subsequent write must observe that as
/// a typed failure rather than an invariant.
#[test]
fn a_hostile_ack_during_a_window_stall_fails_typed_not_panicking() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut write_half = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        for _ in 0..2 {
            let _ = read_frame(&mut reader, 1 << 20);
        }
        // Let the primary enter the backpressure stall before lying.
        std::thread::sleep(Duration::from_millis(150));
        let _ = write_frame(&mut write_half, b"ok 9");
        let _ = write_half.flush();
        while let Ok(Some(_)) = read_frame(&mut reader, 1 << 20) {}
    });

    let (_primary, _boot, frames) = seeded_primary(3);
    let config = LinkConfig {
        drain_timeout: Duration::from_secs(30),
        ..fast_config(2)
    };
    let mut link = PrimaryLink::connect_with(addr, config).unwrap();
    link.send(&frames[0]).unwrap();
    link.send(&frames[1]).unwrap();
    assert_eq!(link.in_flight(), 2, "the window is full");
    // Blocking send stalls for an ack slot; the ack that arrives is
    // hostile. The call must fail typed, with the honest state intact.
    let err = link
        .send(&frames[2])
        .expect_err("a hostile ack must fail the stalled send");
    assert_protocol(err, "above the shipped window");
    assert!(!link.is_connected(), "the poisoned connection is dropped");
    assert_eq!(link.acked_seq(), None, "a lying ack never moves acked_seq");
    drop(link);
    server.join().unwrap();
}

/// An honest ack dribbled one byte per read-timeout window (length
/// prefix and payload split across many TCP segments) must still be
/// reassembled and processed: a timeout mid-frame parks the partial
/// bytes in the link's staging buffer instead of stranding them in the
/// reader. Regression test — a split ack used to wedge the drain until
/// its full timeout.
#[test]
fn an_ack_split_across_reads_is_reassembled() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        stream.set_nodelay(true).unwrap();
        let mut write_half = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        for _ in 0..2 {
            let _ = read_frame(&mut reader, 1 << 20);
        }
        let payload = b"ok 2";
        let mut framed = (payload.len() as u32).to_be_bytes().to_vec();
        framed.extend_from_slice(payload);
        for b in framed {
            write_half.write_all(&[b]).unwrap();
            write_half.flush().unwrap();
            std::thread::sleep(Duration::from_millis(60));
        }
        while let Ok(Some(_)) = read_frame(&mut reader, 1 << 20) {}
    });
    let (_primary, _boot, frames) = seeded_primary(2);
    let config = LinkConfig {
        read_timeout: Duration::from_millis(50),
        drain_timeout: Duration::from_secs(30),
        window: 4,
        ..LinkConfig::default()
    };
    let mut link = PrimaryLink::connect_with(addr, config).unwrap();
    link.send(&frames[0]).unwrap();
    link.send(&frames[1]).unwrap();
    assert_eq!(link.drain().unwrap(), Some(frames[1].seq));
    assert_eq!(link.in_flight(), 0);
    drop(link);
    server.join().unwrap();
}

// ---------------------------------------------------------------------------
// Failover with a full window in flight (proptest).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cut the TCP link at an arbitrary stream position with up to a
    /// full window of unacknowledged frames in flight, promote the
    /// replica at that instant: every acknowledged event survives,
    /// nothing unacknowledged leaks in, and re-driving the unacked
    /// suffix converges byte-identically with an uninterrupted
    /// reference engine.
    #[test]
    fn failover_with_a_full_window_in_flight_loses_no_acked_event(
        seed in 0u64..1000,
        len in 120usize..300,
        cut_salt in 0usize..10_000,
        inflight in 1usize..=8,
    ) {
        const BATCH: usize = 8;
        const WINDOW: usize = 8;
        let seq = churn_seq(1, 8, 60, 1 << 12, false, len, seed);
        let chunks: Vec<&[realloc_core::Request]> =
            seq.requests().chunks(BATCH).collect();

        let mut primary = Primary::new(Engine::new(journaled_config(2)), 1).unwrap();
        let server = ReplicaServer::bind("127.0.0.1:0", Replica::new()).unwrap();
        let mut link = PrimaryLink::connect_with(
            server.addr(),
            LinkConfig { window: WINDOW, ..LinkConfig::default() },
        ).unwrap();
        let (_, boot) = primary.bootstrap();
        for f in &boot {
            link.send(f).unwrap();
        }

        // Generate the full frame stream up front; coverage[i] = chunks
        // fully applied once frames[..=i] landed.
        let mut frames: Vec<Frame> = Vec::new();
        let mut coverage: Vec<usize> = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            for &r in *chunk {
                primary.submit(r);
            }
            let (_, f) = primary.flush();
            for fr in f {
                frames.push(fr);
                coverage.push(i + 1);
            }
        }

        // frames[..cut] are shipped and *drained* (acknowledged);
        // frames[cut..cut+k] are shipped but stuck behind the replica's
        // lock when the primary dies.
        let cut = 1 + cut_salt % frames.len();
        let k = inflight.min(WINDOW).min(frames.len() - cut);
        for f in &frames[..cut] {
            link.send(f).unwrap();
        }
        link.drain().unwrap();
        prop_assert_eq!(link.acked_seq(), Some(frames[cut - 1].seq));

        let cell = server.replica();
        let mut guard = cell.lock().unwrap();
        for f in &frames[cut..cut + k] {
            // Within the window: accepted for delivery without blocking.
            link.try_send(f).unwrap();
        }
        prop_assert_eq!(link.in_flight(), k);
        let acked = link.acked_seq().unwrap();
        drop(link); // the primary dies with the pipe full

        // Promote under the same lock the handler is blocked on: the
        // in-flight tail races the crash and loses, exactly as specified.
        let mut promoted = guard.promote().unwrap();
        drop(guard);
        prop_assert_eq!(promoted.term(), 2);
        prop_assert_eq!(
            promoted.next_seq(),
            acked + 1,
            "promoted state is exactly the acknowledged prefix"
        );

        // Re-drive everything not yet acknowledged on the new lineage.
        for chunk in chunks.iter().skip(coverage[cut - 1]) {
            for &r in *chunk {
                promoted.submit(r);
            }
            promoted.flush();
        }

        let mut reference = Engine::new(journaled_config(2));
        for chunk in &chunks {
            for &r in *chunk {
                reference.submit(r);
            }
            reference.flush();
        }
        prop_assert_eq!(
            promoted.engine().snapshot_text(),
            reference.snapshot_text()
        );
    }
}

// ---------------------------------------------------------------------------
// Quorum group commit.
// ---------------------------------------------------------------------------

fn tcp_group(
    quorum: usize,
    replicas: usize,
    config: LinkConfig,
    t: &Telemetry,
) -> (ReplicationGroup, Vec<ReplicaServer>) {
    let primary = Primary::new(Engine::new(journaled_config(2)), 1).unwrap();
    let mut group = ReplicationGroup::new(primary, quorum).unwrap();
    group.attach_telemetry(t);
    let mut servers = Vec::new();
    for _ in 0..replicas {
        let server = ReplicaServer::bind("127.0.0.1:0", Replica::new()).unwrap();
        let mut link = PrimaryLink::connect_with(server.addr(), config.clone()).unwrap();
        link.attach_telemetry(t);
        group.add_replica(Box::new(link)).unwrap();
        servers.push(server);
    }
    (group, servers)
}

fn submit_batch(group: &mut ReplicationGroup, ids: std::ops::Range<u64>) {
    for i in ids {
        group.submit(Request::Insert {
            id: JobId(i),
            window: Window::new(i % 20, i % 20 + 3),
        });
    }
}

/// Quorum-of-2 over two TCP replicas: every commit lands both replicas
/// at the shipped position, byte-identical to the primary, and the
/// group instruments track it.
#[test]
fn quorum_commit_acks_once_both_replicas_applied() {
    let t = Telemetry::new();
    let (mut group, servers) = tcp_group(2, 2, LinkConfig::default(), &t);
    for round in 0..5u64 {
        submit_batch(&mut group, round * 8..round * 8 + 8);
        let (report, shipped) = group.flush_now();
        assert_eq!(report.processed(), 8);
        let committed = group.commit().expect("both replicas are healthy");
        assert_eq!(committed, shipped);
        assert_eq!(group.committed_seq(), shipped);
    }
    assert_eq!(counter(&t, "cluster_group_commits_total"), 5);
    assert_eq!(counter(&t, "cluster_group_quorum_failures_total"), 0);
    assert_eq!(
        gauge(&t, "cluster_group_committed_seq"),
        group.shipped_seq()
    );
    let digest = group.primary().engine().state_digest();
    for server in &servers {
        let cell = server.replica();
        let replica = cell.lock().unwrap();
        assert_eq!(replica.state_digest(), Some(digest));
        replica.validate().expect("replica valid");
    }
}

/// With quorum 1 of 2, a replica stalled under its lock neither blocks
/// the commit nor inflates the committed floor; once released, the
/// laggard drains back to parity.
#[test]
fn a_stalled_replica_does_not_block_a_met_quorum() {
    let t = Telemetry::new();
    let (mut group, servers) = tcp_group(1, 2, LinkConfig::default(), &t);
    // Prime both replicas so the stall happens mid-stream.
    submit_batch(&mut group, 0..4);
    let (_, shipped) = group.flush_now();
    assert_eq!(group.commit().unwrap(), shipped);

    let cell = servers[1].replica();
    let guard = cell.lock().unwrap();
    submit_batch(&mut group, 4..8);
    let (_, shipped) = group.flush_now();
    let started = Instant::now();
    let committed = group.commit().expect("replica 1 alone meets quorum 1");
    assert_eq!(committed, shipped);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "a met quorum never waits on the laggard"
    );
    drop(guard);

    // The stalled replica's frames were pipelined all along: draining
    // its link directly brings it to parity without a resend.
    let (primary, mut links) = group.into_parts();
    assert_eq!(links[1].drain().unwrap(), Some(shipped));
    let digest = primary.engine().state_digest();
    for server in &servers {
        let cell = server.replica();
        assert_eq!(cell.lock().unwrap().state_digest(), Some(digest));
    }
}

/// A missed quorum is a typed report, not a hang: commit fails within
/// the drain bound carrying how many replicas made it, and the next
/// commit repairs the dropped link back to parity.
#[test]
fn quorum_lost_is_typed_and_the_next_commit_repairs() {
    let t = Telemetry::new();
    let (mut group, servers) = tcp_group(2, 2, fast_config(8), &t);
    submit_batch(&mut group, 0..4);
    let (_, shipped) = group.flush_now();
    assert_eq!(group.commit().unwrap(), shipped);

    // Stall replica 2 past the drain timeout: quorum 2 cannot be met,
    // and the stalled link's connection is dropped by its bounded drain.
    let cell = servers[1].replica();
    let guard = cell.lock().unwrap();
    submit_batch(&mut group, 4..8);
    let (_, shipped) = group.flush_now();
    match group.commit() {
        Err(GroupError::QuorumLost {
            needed,
            acked,
            last_error,
        }) => {
            assert_eq!(needed, 2);
            assert_eq!(acked, 1, "the healthy replica did reach the target");
            assert!(last_error.is_some(), "the laggard's failure is reported");
        }
        other => panic!("a stalled quorum member must lose the quorum: {other:?}"),
    }
    assert_eq!(counter(&t, "cluster_group_quorum_failures_total"), 1);
    drop(guard);

    // Release and retry: commit's repair pass re-ships from the last
    // cumulative ack (or re-bootstraps if the replica slid forward) and
    // the quorum is met again.
    let committed = group.commit().expect("repair restores the quorum");
    assert_eq!(committed, shipped);
    let digest = group.primary().engine().state_digest();
    for server in &servers {
        let cell = server.replica();
        assert_eq!(cell.lock().unwrap().state_digest(), Some(digest));
    }
}

/// A sink that accepts frames but never acknowledges (the fire-and-
/// forget channel) can ride along in a group but never satisfies a
/// quorum — and never poisons the committed floor.
#[test]
fn a_never_acking_sink_cannot_satisfy_a_quorum() {
    let t = Telemetry::new();
    let (mut group, _servers) = tcp_group(2, 1, LinkConfig::default(), &t);
    let (sink, source) = channel();
    group.add_replica(Box::new(sink)).unwrap();
    submit_batch(&mut group, 0..4);
    let (_, shipped) = group.flush_now();
    match group.commit() {
        Err(GroupError::QuorumLost { needed, acked, .. }) => {
            assert_eq!((needed, acked), (2, 1));
        }
        other => panic!("a never-acking sink must not count: {other:?}"),
    }
    // The floor only counts acknowledged replicas: quorum-th highest of
    // [shipped, 0] is 0.
    assert_eq!(group.committed_seq(), 0);
    assert!(shipped > 0);
    drop(source);
}

// ---------------------------------------------------------------------------
// Flush coalescing on the primary.
// ---------------------------------------------------------------------------

/// Small batches defer up to `max_defer` flushes, a queue at
/// `min_batch` flushes immediately, and the barrier variant bypasses
/// the policy entirely.
#[test]
fn coalesced_flushes_defer_small_batches_within_the_bound() {
    let mut primary = Primary::new(Engine::new(journaled_config(2)), 1).unwrap();
    primary.set_coalescing(Some(CoalesceConfig {
        min_batch: 4,
        max_defer: 2,
    }));
    let submit = |p: &mut Primary, id: u64| {
        p.submit(Request::Insert {
            id: JobId(id),
            window: Window::new(id * 10, id * 10 + 4),
        });
    };

    // Two sub-threshold flushes defer; the third is forced by max_defer.
    submit(&mut primary, 1);
    let (r, f) = primary.flush();
    assert_eq!((r.processed(), f.len()), (0, 0), "first small flush defers");
    submit(&mut primary, 2);
    let (r, f) = primary.flush();
    assert_eq!(
        (r.processed(), f.len()),
        (0, 0),
        "second small flush defers"
    );
    submit(&mut primary, 3);
    let (r, f) = primary.flush();
    assert_eq!(r.processed(), 3, "max_defer forces the third");
    assert_eq!(f.len(), 1);

    // A queue at min_batch never defers.
    for id in 4..8 {
        submit(&mut primary, id);
    }
    let (r, f) = primary.flush();
    assert_eq!(r.processed(), 4, "min_batch flushes immediately");
    assert_eq!(f.len(), 1);

    // The barrier variant bypasses the policy.
    submit(&mut primary, 8);
    let (r, f) = primary.flush_now();
    assert_eq!(r.processed(), 1, "flush_now ignores coalescing");
    assert_eq!(f.len(), 1);

    // An empty coalesced flush ships nothing and burns no deferral.
    let (r, f) = primary.flush();
    assert_eq!((r.processed(), f.len()), (0, 0));

    // Disabling the policy restores plain flush semantics.
    primary.set_coalescing(None);
    submit(&mut primary, 9);
    let (r, f) = primary.flush();
    assert_eq!((r.processed(), f.len()), (1, 1));
}
