//! Replication differential proofs.
//!
//! The contract under test: a replica that has acknowledged the
//! primary's frame stream through any position is **byte-identical**
//! (snapshot text and state digest) to the primary at that position;
//! promotion at any frame boundary loses no acknowledged event; and a
//! deposed primary's frames are fenced by the bumped term.
//!
//! * `tcp_differential_failover_proof` is the acceptance drill: ≥10k
//!   churn requests over the loopback TCP transport, spanning ≥2 online
//!   resizes, with a mid-stream primary "crash", a partitioned second
//!   replica re-bootstrapped by the promoted node, and a fencing check
//!   against the deposed term — ending byte-identical to an
//!   uninterrupted reference engine.
//! * the proptest drives arbitrary churn **with interleaved resizes**
//!   and a failover at an arbitrary frame position, asserting the
//!   promoted lineage converges to the reference byte-for-byte.
//! * the corpus tests pin graceful (never panicking) rejection of
//!   stale terms, sequence gaps, regressing batches, tampered
//!   outcomes, and divergent checkpoint markers.

use proptest::prelude::*;
use realloc_cluster::tcp::{PrimaryLink, ReplicaServer};
use realloc_cluster::transport::{FrameSink, TransportError};
use realloc_cluster::{ApplyError, Frame, Payload, Primary, Replica};
use realloc_core::snapshot::Restorable as _;
use realloc_core::RequestSeq;
use realloc_engine::{BackendKind, Engine, EngineConfig, JournalEvent};
use realloc_sim::harness::churn_seq;

fn journaled_config(shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments: 2,
    }
}

/// Drives `engine` over `seq` in `batch`-sized chunks, resizing to
/// `resizes[i].1` shards just before flushing chunk `resizes[i].0` —
/// the uninterrupted reference every replicated lineage must match.
fn reference_run(
    shards: usize,
    seq: &RequestSeq,
    batch: usize,
    resizes: &[(usize, usize)],
) -> Engine {
    let mut engine = Engine::new(journaled_config(shards));
    for (i, chunk) in seq.requests().chunks(batch).enumerate() {
        for &(at, to) in resizes {
            if at == i {
                engine.resize(to).expect("reference resize");
            }
        }
        for &r in chunk {
            engine.submit(r);
        }
        engine.flush();
    }
    engine
}

#[test]
fn tcp_differential_failover_proof() {
    const REQUESTS: usize = 10_000;
    const BATCH: usize = 100;
    const CRASH_AT: usize = 85; // chunk index the primary dies before
    const PARTITION_FROM: usize = 80; // replica 2 stops hearing here
                                      // One-machine-dense stream so every resize in the plan is feasible.
    let seq = churn_seq(1, 8, 300, 1 << 14, false, REQUESTS, 7);
    assert!(seq.len() >= 10_000, "acceptance floor");
    let resizes = [(30usize, 3usize), (60, 4), (90, 5)];

    // Uninterrupted reference lineage.
    let reference = reference_run(2, &seq, BATCH, &resizes);

    // Replicated lineage: primary + two TCP replicas on loopback.
    let mut primary = Primary::new(Engine::new(journaled_config(2)), 1).unwrap();
    let server1 = ReplicaServer::bind("127.0.0.1:0", Replica::new()).unwrap();
    let server2 = ReplicaServer::bind("127.0.0.1:0", Replica::new()).unwrap();
    let mut link1 = PrimaryLink::connect(server1.addr()).unwrap();
    let mut link2 = PrimaryLink::connect(server2.addr()).unwrap();

    let (owed, boot) = primary.bootstrap();
    assert!(owed.is_empty(), "nothing flushed yet");
    for f in &boot {
        link1.send(f).unwrap();
        link2.send(f).unwrap();
    }

    let chunks: Vec<&[realloc_core::Request]> = seq.requests().chunks(BATCH).collect();
    for (i, chunk) in chunks.iter().enumerate().take(CRASH_AT) {
        let mut frames = Vec::new();
        for &(at, to) in &resizes {
            if at == i {
                let (_, f) = primary.resize(to).expect("primary resize");
                frames.extend(f);
            }
        }
        for &r in *chunk {
            primary.submit(r);
        }
        let (_, f) = primary.flush();
        frames.extend(f);
        if (i + 1) % 20 == 0 {
            frames.extend(primary.checkpoint());
        }
        for f in &frames {
            link1.send(f).unwrap(); // every frame ACKNOWLEDGED by replica 1
            if i < PARTITION_FROM {
                link2.send(f).unwrap();
            }
        }
    }

    // Commit barrier: the pipelined link may still have a window of
    // frames in flight — drain so "every frame ACKNOWLEDGED by
    // replica 1" is literally true before the crash.
    link1.drain().unwrap();

    // "Crash": the primary process is gone. Everything replica 1
    // acknowledged must survive; replica 2 is partitioned and stale.
    let deposed_term = primary.term();
    drop(link1);

    // Fenced failover: promote replica 1 (term 2), then re-bootstrap
    // the stale replica 2 from the promoted node.
    let replica1 = server1.replica();
    let mut promoted = replica1
        .lock()
        .expect("replica mutex")
        .promote()
        .expect("bootstrapped replica promotes");
    assert_eq!(promoted.term(), deposed_term + 1);
    let (owed, boot) = promoted.bootstrap();
    assert!(owed.is_empty());
    let mut new_link2 = PrimaryLink::connect(server2.addr()).unwrap();
    for f in &boot {
        new_link2.send(f).unwrap();
    }
    // Barrier: replica 2 must have adopted the bumped term before the
    // deposed primary's frames can bounce off it.
    new_link2.drain().unwrap();

    // The deposed primary wakes up and keeps streaming: every frame it
    // emits now bounces off the bumped term.
    for &r in chunks[CRASH_AT] {
        primary.submit(r);
    }
    let (_, stale_frames) = primary.flush();
    assert!(!stale_frames.is_empty());
    // Pipelined sends return before the ack: the rejection surfaces on
    // the drain (or on the send's own ack pump, if the err raced in).
    match link2.send(&stale_frames[0]).and_then(|()| link2.drain()) {
        Err(TransportError::Rejected(detail)) => {
            assert!(detail.contains("fenced"), "unexpected rejection: {detail}")
        }
        other => panic!("deposed primary's frame was not fenced: {other:?}"),
    }
    drop(primary);
    drop(link2);

    // The promoted primary keeps serving the remaining stream (the
    // crashed node's unshipped chunk was never acknowledged anywhere,
    // so the new lineage re-drives it).
    for (i, chunk) in chunks.iter().enumerate().skip(CRASH_AT) {
        let mut frames = Vec::new();
        for &(at, to) in &resizes {
            if at == i {
                let (_, f) = promoted.resize(to).expect("promoted resize");
                frames.extend(f);
            }
        }
        for &r in *chunk {
            promoted.submit(r);
        }
        let (_, f) = promoted.flush();
        frames.extend(f);
        for f in &frames {
            new_link2.send(f).unwrap();
        }
    }
    new_link2.drain().unwrap();

    // End-to-end differential proof: promoted lineage == uninterrupted
    // reference, byte for byte, and the TCP-fed replica matches both.
    assert_eq!(promoted.engine().epoch(), reference.epoch());
    assert_eq!(
        promoted.engine().snapshot_text(),
        reference.snapshot_text(),
        "promoted lineage diverged from the uninterrupted reference"
    );
    assert_eq!(promoted.engine().state_digest(), reference.state_digest());
    {
        let replica2 = server2.replica();
        let r2 = replica2.lock().expect("replica mutex");
        assert_eq!(r2.term(), promoted.term());
        assert_eq!(
            r2.engine().expect("bootstrapped").snapshot_text(),
            reference.snapshot_text(),
            "TCP replica diverged from the reference"
        );
        assert_eq!(r2.state_digest(), Some(reference.state_digest()));
        assert!(r2.validate().is_ok());
    }
}

#[test]
fn checkpoint_bootstrap_catches_up_in_o_tail() {
    // A late joiner is bootstrapped from the latest checkpoint plus the
    // retained frame tail — the snapshot it restores is the CHECKPOINT
    // snapshot (strictly older than the live state), and the tail frames
    // bring it to byte-identical live state.
    let seq = churn_seq(1, 8, 120, 1 << 12, false, 1200, 23);
    let mut primary = Primary::new(Engine::new(journaled_config(2)), 1).unwrap();
    let mut shipped: Vec<Frame> = Vec::new();
    for (i, chunk) in seq.requests().chunks(64).enumerate() {
        for &r in chunk {
            primary.submit(r);
        }
        let (_, f) = primary.flush();
        shipped.extend(f);
        if (i + 1) % 6 == 0 {
            shipped.extend(primary.checkpoint());
        }
    }
    let (_, boot) = primary.bootstrap();
    let Payload::Snapshot { events_applied, .. } = &boot[0].payload else {
        panic!("bootstrap must lead with a snapshot, got {:?}", boot[0]);
    };
    let total = primary.engine().journal().unwrap().total_events();
    assert!(
        *events_applied < total,
        "checkpoint-anchored bootstrap ships the older checkpoint snapshot \
         ({events_applied} events) plus the tail, not a fresh full snapshot ({total} events)"
    );
    assert!(boot.len() > 1, "tail frames follow the checkpoint snapshot");

    let mut joiner = Replica::new();
    for f in &boot {
        joiner.apply(f).unwrap();
    }
    assert_eq!(joiner.events_applied(), total);
    assert_eq!(
        joiner.engine().unwrap().snapshot_text(),
        primary.engine().snapshot_text()
    );

    // And the joiner keeps following the live stream seamlessly.
    let some_active = primary.engine().placements()[0].0;
    primary.submit(realloc_core::Request::Delete { id: some_active });
    let (_, frames) = primary.flush();
    for f in &frames {
        joiner.apply(f).unwrap();
    }
    assert_eq!(joiner.state_digest(), Some(primary.engine().state_digest()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary churn with interleaved resizes, failover at an
    /// arbitrary frame position: the promoted lineage (and a second
    /// follower that survives the handoff) converges byte-identically
    /// to an uninterrupted reference engine, and the deposed term is
    /// fenced.
    #[test]
    fn failover_at_any_frame_is_lossless(
        seed in 0u64..1000,
        shards in 2usize..4,
        len in 200usize..600,
        batch in 16usize..64,
        grow1 in 1usize..3,
        grow2 in 1usize..3,
        cut_salt in 0usize..10_000,
    ) {
        let seq = churn_seq(1, 8, 60, 1 << 12, false, len, seed);
        let n_chunks = seq.requests().chunks(batch).len();
        let resizes = [
            (n_chunks / 3, shards + grow1),
            (2 * n_chunks / 3, shards + grow1 + grow2),
        ];
        let reference = reference_run(shards, &seq, batch, &resizes);

        // Stream the whole run, remembering each frame and, per frame,
        // how many chunks and resizes were fully covered when it was
        // acknowledged.
        let mut primary = Primary::new(Engine::new(journaled_config(shards)), 1).unwrap();
        let (_, boot) = primary.bootstrap();
        let mut frames: Vec<Frame> = Vec::new();
        // (chunks_done, resizes_done) after applying frames[..=i].
        let mut coverage: Vec<(usize, usize)> = Vec::new();
        let mut resizes_done = 0usize;
        for (i, chunk) in seq.requests().chunks(batch).enumerate() {
            for &(at, to) in &resizes {
                if at == i {
                    let (_, f) = primary.resize(to).unwrap();
                    resizes_done += 1;
                    for fr in f {
                        frames.push(fr);
                        coverage.push((i, resizes_done));
                    }
                }
            }
            for &r in chunk {
                primary.submit(r);
            }
            let (_, f) = primary.flush();
            for fr in f {
                frames.push(fr);
                coverage.push((i + 1, resizes_done));
            }
        }

        // Failover position: any acknowledged frame boundary.
        let cut = 1 + cut_salt % frames.len();
        let mut replica1 = Replica::new();
        let mut replica2 = Replica::new();
        for f in &boot {
            replica1.apply(f).unwrap();
            replica2.apply(f).unwrap();
        }
        for f in &frames[..cut] {
            replica1.apply(f).unwrap();
            replica2.apply(f).unwrap();
        }
        let (chunks_done, eps_done) = coverage[cut - 1];

        let mut promoted = replica1.promote().unwrap();
        prop_assert_eq!(promoted.term(), 2);

        // The deposed term is fenced as soon as the follower hears the
        // new one; the frames it acknowledged before that are kept.
        let follow = |replica2: &mut Replica, fs: &[Frame]| -> Result<(), ApplyError> {
            for f in fs {
                replica2.apply(f)?;
            }
            Ok(())
        };

        // Re-drive everything not yet acknowledged on the new lineage,
        // streaming to the surviving follower.
        let mut resizes_seen = 0usize;
        for (i, chunk) in seq.requests().chunks(batch).enumerate() {
            for &(at, to) in &resizes {
                if at == i {
                    resizes_seen += 1;
                    if resizes_seen > eps_done {
                        let (_, f) = promoted.resize(to).unwrap();
                        follow(&mut replica2, &f).unwrap();
                    }
                }
            }
            if i < chunks_done {
                continue; // acknowledged before the crash
            }
            for &r in chunk {
                promoted.submit(r);
            }
            let (_, f) = promoted.flush();
            follow(&mut replica2, &f).unwrap();
        }

        // Stale-term frames bounce off both survivors.
        if cut < frames.len() {
            let stale = replica2.apply(&frames[cut]);
            prop_assert_eq!(
                stale,
                Err(ApplyError::StaleTerm { frame: 1, current: 2 })
            );
        }

        // Byte-identical convergence, zero acknowledged events lost.
        prop_assert_eq!(
            promoted.engine().snapshot_text(),
            reference.snapshot_text()
        );
        prop_assert_eq!(
            replica2.engine().unwrap().snapshot_text(),
            reference.snapshot_text()
        );
        prop_assert_eq!(replica2.state_digest(), Some(reference.state_digest()));
        prop_assert!(replica2.validate().is_ok());
    }
}

// ---------------------------------------------------------------------
// Malformed / hostile stream corpus: graceful rejection, never panics.
// ---------------------------------------------------------------------

/// A tiny bootstrapped primary/replica pair plus one streamed frame.
fn small_pair() -> (Primary, Replica, Vec<Frame>) {
    let mut primary = Primary::new(Engine::new(journaled_config(2)), 1).unwrap();
    let mut replica = Replica::new();
    let (_, boot) = primary.bootstrap();
    for f in &boot {
        replica.apply(f).unwrap();
    }
    for i in 0..8u64 {
        primary.submit(realloc_core::Request::Insert {
            id: realloc_core::JobId(i),
            window: realloc_core::Window::new(0, 64),
        });
    }
    let (_, frames) = primary.flush();
    (primary, replica, frames)
}

#[test]
fn stream_frames_before_bootstrap_are_rejected() {
    let (_primary, _replica, frames) = small_pair();
    let mut fresh = Replica::new();
    assert_eq!(fresh.apply(&frames[0]), Err(ApplyError::NotBootstrapped));
}

#[test]
fn sequence_gaps_and_regressions_are_rejected() {
    let (mut primary, mut replica, frames) = small_pair();
    // Skip ahead: gap.
    let mut ahead = frames[0].clone();
    ahead.seq += 5;
    assert_eq!(
        replica.apply(&ahead),
        Err(ApplyError::SequenceGap {
            expected: 1,
            got: 6
        })
    );
    // Apply, then regress (duplicate delivery).
    replica.apply(&frames[0]).unwrap();
    assert_eq!(
        replica.apply(&frames[0]),
        Err(ApplyError::SequenceGap {
            expected: 2,
            got: 1
        })
    );
    // The stream continues fine afterwards: rejected frames change nothing.
    for i in 0..4u64 {
        primary.submit(realloc_core::Request::Delete {
            id: realloc_core::JobId(i),
        });
    }
    let (_, more) = primary.flush();
    for f in &more {
        replica.apply(f).unwrap();
    }
    assert_eq!(
        replica.state_digest(),
        Some(primary.engine().state_digest())
    );
}

#[test]
fn idle_flushes_do_not_desync_the_digest() {
    // An idle tick (flush with nothing queued) must not advance state
    // the replicas can never hear about: the flush counter is part of
    // the digested snapshot, so the next check marker would otherwise
    // report divergence.
    let (mut primary, mut replica, frames) = small_pair();
    for f in &frames {
        replica.apply(f).unwrap();
    }
    let (report, idle) = primary.flush();
    assert_eq!(report.processed(), 0);
    assert!(idle.is_empty());
    for f in primary.checkpoint() {
        replica
            .apply(&f)
            .expect("digest still matches after idle ticks");
    }
    assert_eq!(
        replica.state_digest(),
        Some(primary.engine().state_digest())
    );
}

#[test]
fn bootstrap_amid_queued_requests_does_not_wedge_the_stream() {
    // Attaching a replica to a busy primary (requests queued, not yet
    // flushed) must not hand the joiner pending queues that the next
    // events frame then trips over.
    let mut primary = Primary::new(Engine::new(journaled_config(2)), 1).unwrap();
    for i in 0..6u64 {
        primary.submit(realloc_core::Request::Insert {
            id: realloc_core::JobId(i),
            window: realloc_core::Window::new(0, 64),
        });
    }
    let (owed, boot) = primary.bootstrap();
    assert!(
        !owed.is_empty(),
        "the pre-bootstrap flush ships to the stream"
    );
    let mut joiner = Replica::new();
    for f in &boot {
        joiner.apply(f).unwrap();
    }
    // The joiner follows the next flush without tripping on restored
    // queues.
    primary.submit(realloc_core::Request::Delete {
        id: realloc_core::JobId(0),
    });
    let (_, frames) = primary.flush();
    for f in &frames {
        joiner.apply(f).unwrap();
    }
    assert_eq!(joiner.state_digest(), Some(primary.engine().state_digest()));
}

#[test]
fn observed_higher_terms_fence_even_when_the_frame_is_rejected() {
    // A lagging replica that merely HEARS a newer term — via a frame it
    // must reject for a sequence gap — adopts it, so the deposed
    // primary's otherwise-contiguous frames bounce from then on. (The
    // alternative is split-brain reads: the replica keeps following the
    // dead lineage it is contiguous with.)
    let (_primary, mut replica, frames) = small_pair();
    let mut future = frames[0].clone();
    future.term = 3;
    future.seq += 10;
    assert!(matches!(
        replica.apply(&future),
        Err(ApplyError::SequenceGap { .. })
    ));
    assert_eq!(replica.term(), 3, "the observed term sticks");
    assert_eq!(
        replica.apply(&frames[0]),
        Err(ApplyError::StaleTerm {
            frame: 1,
            current: 3
        }),
        "the old lineage is fenced despite being contiguous"
    );
}

#[test]
fn frames_since_refuses_positions_ahead_of_the_stream() {
    let (primary, _replica, frames) = small_pair();
    let last = frames.last().unwrap().seq;
    assert_eq!(
        primary.frames_since(last).as_deref(),
        Some(&[][..]),
        "exactly caught up"
    );
    assert_eq!(
        primary.frames_since(last + 1),
        None,
        "a replica ahead of this lineage needs a re-bootstrap, not an empty catch-up"
    );
}

#[test]
fn tampered_outcomes_and_batches_are_rejected() {
    let (_primary, replica0, frames) = small_pair();

    // Tampered outcome: recorded cost altered → divergence.
    let mut replica = replica_clone(&replica0);
    let mut tampered = frames[0].clone();
    if let Payload::Events(events) = &mut tampered.payload {
        if let Ok(c) = &mut events[0].result {
            c.reallocations += 7;
        }
    }
    match replica.apply(&tampered) {
        Err(ApplyError::Diverged(_)) => {}
        other => panic!("tampered outcome not caught: {other:?}"),
    }

    // Regressing batch number → corrupt, after a legitimate apply.
    let mut replica = replica_clone(&replica0);
    replica.apply(&frames[0]).unwrap();
    let mut regressed = frames[0].clone();
    regressed.seq += 1;
    if let Payload::Events(events) = &mut regressed.payload {
        for e in events.iter_mut() {
            e.batch = 0; // already consumed by the first apply
        }
    }
    match replica.apply(&regressed) {
        Err(ApplyError::Corrupt(m)) => assert!(m.contains("regresses"), "{m}"),
        other => panic!("regressing batch not caught: {other:?}"),
    }

    // Checkpoint marker with a wrong digest → divergence.
    let mut replica = replica_clone(&replica0);
    replica.apply(&frames[0]).unwrap();
    let bad_check = Frame {
        term: 1,
        seq: frames[0].seq + 1,
        payload: Payload::Check {
            events_applied: replica.events_applied(),
            digest: 0xbad,
        },
        trace: None,
    };
    match replica.apply(&bad_check) {
        Err(ApplyError::Diverged(m)) => assert!(m.contains("digest"), "{m}"),
        other => panic!("digest mismatch not caught: {other:?}"),
    }
}

#[test]
fn corrupt_bootstrap_snapshots_are_rejected() {
    let mut replica = Replica::new();
    let frame = Frame {
        term: 1,
        seq: 0,
        payload: Payload::Snapshot {
            events_applied: 0,
            text: "# realloc snapshot v1\n!begin engine\ntruncated".to_string(),
        },
        trace: None,
    };
    match replica.apply(&frame) {
        Err(ApplyError::Corrupt(_)) => {}
        other => panic!("corrupt snapshot not caught: {other:?}"),
    }
    assert!(!replica.is_bootstrapped());
}

#[test]
fn promotion_retires_the_replica() {
    let (_primary, mut replica, frames) = small_pair();
    replica.apply(&frames[0]).unwrap();
    let promoted = replica.promote().unwrap();
    assert_eq!(promoted.term(), 2);
    assert_eq!(replica.apply(&frames[0]), Err(ApplyError::Retired));
    assert!(matches!(
        replica.promote(),
        Err(realloc_cluster::ClusterError::Retired)
    ));
}

/// Replicas are deliberately not `Clone` (they own an engine); rebuild
/// an equivalent one through a fresh bootstrap for corpus tests.
fn replica_clone(replica: &Replica) -> Replica {
    let engine = replica.engine().expect("bootstrapped");
    let mut out = Replica::new();
    out.apply(&Frame {
        term: replica.term(),
        seq: replica.last_seq(),
        payload: Payload::Snapshot {
            events_applied: replica.events_applied(),
            text: engine.snapshot_text(),
        },
        trace: None,
    })
    .expect("snapshot round-trip");
    out
}

/// `JournalEvent` is `Copy`; silence the unused-import lint path by
/// touching the type in a trivial assertion.
#[test]
fn events_frames_group_single_batches() {
    let (_primary, _replica, frames) = small_pair();
    for f in &frames {
        if let Payload::Events(events) = &f.payload {
            let batch = events[0].batch;
            assert!(events.iter().all(|e: &JournalEvent| e.batch == batch));
        }
    }
}
