//! Replication observability proofs.
//!
//! Registries on both ends of a replicated pair are driven by the same
//! deterministic frame stream, so their counters and gauges are exact:
//! the primary's per-payload frame counters match the frames it actually
//! stamped, the replica's gauges mirror its public accessors after every
//! apply, and the **replication lag** a poller computes from the two
//! registries — primary `cluster_next_seq − 1` minus replica
//! `cluster_replica_last_seq` — is exactly the number of stream frames
//! withheld from the replica. Manual clocks pin every duration sample to
//! zero, making the whole registry a pure function of the event stream.
//!
//! The TCP test exercises the per-link instruments (`cluster_link_*`,
//! labeled `replica="<addr>"`): bytes shipped, ack RTT sample counts,
//! the acked-seq gauge, and the send-error counter across a server
//! shutdown.

use realloc_cluster::tcp::{PrimaryLink, ReplicaServer};
use realloc_cluster::transport::{FrameSink, LocalLink};
use realloc_cluster::{Frame, Primary, Replica, ReplicationGroup};
use realloc_core::{JobId, Request, Window};
use realloc_engine::{BackendKind, Engine, EngineConfig};
use realloc_telemetry::{labeled, Clock, Severity, Telemetry, TraceCtx};
use std::sync::{Arc, Mutex};

fn journaled_config(shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        machines_per_shard: 1,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments: 2,
    }
}

fn counter(t: &Telemetry, name: &str) -> u64 {
    t.counter_value(name).unwrap_or(0)
}

fn gauge(t: &Telemetry, name: &str) -> u64 {
    t.gauge_value(name).unwrap_or(0)
}

/// Streams a bootstrapped workload with a resize and a checkpoint and
/// checks every cluster-level counter/gauge against the public
/// accessors on both roles — including the cross-registry lag formula.
#[test]
fn replication_registry_tracks_stream() {
    let pt = Telemetry::with_clock(Clock::manual(), 64);
    let rt = Telemetry::with_clock(Clock::manual(), 64);
    let mut primary = Primary::new(Engine::new(journaled_config(2)), 1).unwrap();
    primary.attach_telemetry(&pt);
    let mut replica = Replica::new();
    replica.attach_telemetry(&rt);

    let (owed, boot) = primary.bootstrap();
    assert!(owed.is_empty());
    for f in &boot {
        replica.apply(f).unwrap();
    }
    assert!(replica.is_bootstrapped());

    let mut stream: Vec<Frame> = Vec::new();
    let mut events_frames = 0u64;
    for batch in 0..6u64 {
        for i in 0..24u64 {
            primary.submit(Request::Insert {
                id: JobId(batch * 24 + i),
                window: Window::new(0, 1 << 12),
            });
        }
        let (_, frames) = primary.flush();
        events_frames += frames.len() as u64;
        stream.extend(frames);
        if batch == 2 {
            let (_, frames) = primary.resize(3).unwrap();
            stream.extend(frames);
        }
    }
    stream.extend(primary.checkpoint());

    // Primary side: per-payload counters count exactly what was stamped.
    assert_eq!(counter(&pt, "cluster_frames_events_total"), events_frames);
    assert_eq!(counter(&pt, "cluster_frames_epoch_total"), 1);
    assert_eq!(counter(&pt, "cluster_frames_check_total"), 1);
    // One snapshot: the joiner bootstrap.
    assert_eq!(counter(&pt, "cluster_frames_snapshot_total"), 1);
    assert_eq!(gauge(&pt, "cluster_next_seq"), primary.next_seq());
    assert_eq!(gauge(&pt, "cluster_term"), primary.term());
    assert_eq!(
        pt.histogram_snapshot("cluster_checkpoint_nanos")
            .map(|h| h.count()),
        Some(1)
    );
    assert_eq!(
        pt.histogram_snapshot("cluster_bootstrap_nanos")
            .map(|h| h.count()),
        Some(1)
    );

    // Withhold the tail: the cross-registry lag formula must report
    // exactly the withheld frame count.
    let withheld = 3usize.min(stream.len());
    for f in &stream[..stream.len() - withheld] {
        replica.apply(f).unwrap();
    }
    let lag = gauge(&pt, "cluster_next_seq") - 1 - gauge(&rt, "cluster_replica_last_seq");
    assert_eq!(lag as usize, withheld);

    // Catch up: lag collapses to zero and every replica gauge mirrors
    // its accessor.
    for f in &stream[stream.len() - withheld..] {
        replica.apply(f).unwrap();
    }
    assert_eq!(
        gauge(&pt, "cluster_next_seq") - 1,
        gauge(&rt, "cluster_replica_last_seq")
    );
    assert_eq!(gauge(&rt, "cluster_replica_last_seq"), replica.last_seq());
    assert_eq!(gauge(&rt, "cluster_replica_term"), replica.term());
    assert_eq!(
        gauge(&rt, "cluster_replica_events_applied"),
        replica.events_applied()
    );
    assert_eq!(
        counter(&rt, "cluster_replica_frames_applied_total"),
        boot.len() as u64 + stream.len() as u64
    );
    assert_eq!(counter(&rt, "cluster_replica_frames_rejected_total"), 0);
    // Digest checks: one per `check` marker.
    assert_eq!(
        rt.histogram_snapshot("cluster_replica_digest_check_nanos")
            .map(|h| h.count()),
        Some(1)
    );
    assert_eq!(
        rt.histogram_snapshot("cluster_replica_bootstrap_nanos")
            .map(|h| h.count()),
        Some(1)
    );
    // The two lineages really are identical — the registries observed a
    // faithful stream, not a coincidentally matching one.
    assert_eq!(
        replica.state_digest(),
        Some(primary.engine().state_digest())
    );
}

/// Rejections and fencing-term adoptions land in the counters and the
/// trace ring with the expected severities.
#[test]
fn rejections_and_term_changes_are_counted() {
    let rt = Telemetry::with_clock(Clock::manual(), 64);
    let mut primary = Primary::new(Engine::new(journaled_config(1)), 1).unwrap();
    let mut replica = Replica::new();
    replica.attach_telemetry(&rt);

    let (_, boot) = primary.bootstrap();
    for f in &boot {
        replica.apply(f).unwrap();
    }
    // Bootstrapping adopted term 1 from term 0.
    assert_eq!(counter(&rt, "cluster_replica_term_changes_total"), 1);

    primary.submit(Request::Insert {
        id: JobId(1),
        window: Window::new(0, 64),
    });
    let (_, frames) = primary.flush();
    let good = frames.into_iter().next().unwrap();

    // A sequence gap at a *higher* term: rejected, but the term is
    // adopted (fencing) — both must be visible.
    let gap = Frame {
        term: 7,
        seq: good.seq + 5,
        payload: good.payload.clone(),
        trace: None,
    };
    assert!(replica.apply(&gap).is_err());
    assert_eq!(counter(&rt, "cluster_replica_frames_rejected_total"), 1);
    assert_eq!(counter(&rt, "cluster_replica_term_changes_total"), 2);
    assert_eq!(gauge(&rt, "cluster_replica_term"), 7);

    // The original frame is now fenced: stale term.
    assert!(replica.apply(&good).is_err());
    assert_eq!(counter(&rt, "cluster_replica_frames_rejected_total"), 2);

    let events = rt.trace_events();
    assert!(events
        .iter()
        .any(|e| e.key == "frame_rejected" && e.severity == Severity::Warn));
    assert!(events
        .iter()
        .any(|e| e.key == "term_adopted" && e.severity == Severity::Info));
    assert!(!events.iter().any(|e| e.key == "diverged"));
}

/// One traced request's causal chain closes at the group-commit point:
/// the armed trace rides the flush into the shipped frame, the replica's
/// `apply` records under the same id, and the successful quorum commit
/// emits the `quorum_ack` point — all under ONE trace id, with the
/// replicated state still digest-identical to an untraced run.
#[test]
fn traced_batch_reaches_quorum_ack_under_one_trace_id() {
    let pt = Telemetry::with_clock(Clock::manual(), 64);
    let rt = Telemetry::with_clock(Clock::manual(), 64);
    let primary = Primary::new(Engine::new(journaled_config(2)), 1).unwrap();
    let mut group = ReplicationGroup::new(primary, 1).unwrap();
    group.attach_telemetry(&pt);

    let mut replica = Replica::new();
    replica.attach_telemetry(&rt);
    let replica = Arc::new(Mutex::new(replica));
    group
        .add_replica(Box::new(LocalLink::new(Arc::clone(&replica))))
        .unwrap();

    // An untraced warm-up batch: its spans must stay out of the trace.
    group.submit(Request::Insert {
        id: JobId(0),
        window: Window::new(0, 256),
    });
    group.flush();
    group.commit().unwrap();

    let tc = TraceCtx::mint(1_234, 7);
    for i in 1..9u64 {
        group.submit(Request::Insert {
            id: JobId(i),
            window: Window::new(0, 256),
        });
    }
    group.primary_mut().engine_mut().arm_trace(tc);
    let (report, shipped) = group.flush();
    assert_eq!(report.processed(), 8);
    let committed = group.commit().unwrap();
    assert!(committed >= shipped);

    // Primary's ring: flush span end + quorum_ack point under the id.
    let p_events = pt.trace_events();
    for key in ["flush", "quorum_ack"] {
        assert!(
            p_events.iter().any(|e| e.key == key && e.trace == tc.id),
            "primary ring missing traced '{key}': {p_events:?}"
        );
    }
    // Replica's ring: the apply landed under the SAME id (it crossed
    // the frame boundary as the out-of-band annotation).
    let r_events = rt.trace_events();
    assert!(
        r_events
            .iter()
            .any(|e| e.key == "apply" && e.trace == tc.id),
        "replica ring missing traced apply: {r_events:?}"
    );
    // The warm-up batch stayed untraced.
    assert!(p_events.iter().any(|e| e.key == "flush" && e.trace == 0));
    // And tracing never touched digested state.
    assert_eq!(
        replica.lock().unwrap().state_digest(),
        Some(group.primary().engine().state_digest())
    );
}

/// Per-link instruments over the real TCP transport: bytes shipped and
/// RTT samples per acknowledged frame, the acked-seq high-water gauge,
/// and send errors once the server is gone.
#[test]
fn tcp_link_metrics_label_the_peer() {
    let t = Telemetry::new();
    let mut primary = Primary::new(Engine::new(journaled_config(1)), 1).unwrap();
    let mut server = ReplicaServer::bind("127.0.0.1:0", Replica::new()).unwrap();
    let mut link = PrimaryLink::connect(server.addr()).unwrap();
    link.attach_telemetry(&t);
    let label = link.peer().to_string();

    let (_, boot) = primary.bootstrap();
    let mut shipped = 0u64;
    let mut sent = 0u64;
    let mut last_seq = 0u64;
    for f in &boot {
        shipped += f.to_text().len() as u64;
        link.send(f).unwrap();
        sent += 1;
        last_seq = f.seq;
    }
    for i in 0..16u64 {
        primary.submit(Request::Insert {
            id: JobId(i),
            window: Window::new(0, 256),
        });
    }
    let (_, frames) = primary.flush();
    for f in &frames {
        shipped += f.to_text().len() as u64;
        link.send(f).unwrap();
        sent += 1;
        last_seq = f.seq;
    }

    // Commit barrier: acks (and their RTT samples) are pipelined — the
    // drain forces every in-flight frame to resolve before reading the
    // instruments.
    assert_eq!(link.drain().unwrap(), Some(last_seq));

    let bytes = labeled("cluster_link_bytes_shipped_total", "replica", &label);
    let rtt = labeled("cluster_link_ack_rtt_nanos", "replica", &label);
    let acked = labeled("cluster_link_acked_seq", "replica", &label);
    let inflight = labeled("cluster_link_window_inflight", "replica", &label);
    let batches = labeled("cluster_ack_batch_size", "replica", &label);
    let errors = labeled("cluster_link_send_errors_total", "replica", &label);
    assert_eq!(counter(&t, &bytes), shipped);
    assert_eq!(t.histogram_snapshot(&rtt).map(|h| h.count()), Some(sent));
    assert_eq!(gauge(&t, &acked), last_seq);
    assert_eq!(gauge(&t, &inflight), 0, "drained: nothing in flight");
    let batch_samples = t
        .histogram_snapshot(&batches)
        .map(|h| h.count())
        .unwrap_or(0);
    assert!(
        (1..=sent).contains(&batch_samples),
        "cumulative acks arrive batched: {batch_samples} acks for {sent} frames"
    );
    assert_eq!(counter(&t, &errors), 0);

    // Kill the server: the accept loop is gone but the connected
    // handler lives on, so re-sending an already-acked frame is
    // rejected (sequence regression). The rejection surfaces on the
    // commit barrier, moves the error counter — and the optimistic
    // pipelined write still ships bytes before the `err` comes back.
    server.shutdown();
    drop(server);
    shipped += frames[0].to_text().len() as u64;
    let failed = link
        .send(&frames[0])
        .and_then(|()| link.drain().map(|_| ()));
    assert!(failed.is_err(), "resending an acked frame must be rejected");
    assert_eq!(counter(&t, &errors), 1);
    assert_eq!(
        counter(&t, &bytes),
        shipped,
        "the optimistic write is counted"
    );
}
