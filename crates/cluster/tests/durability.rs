//! Durability-aware replication: a primary recovered from the on-disk
//! store bootstraps replicas from its recovered checkpoint, links
//! survive dead peers with bounded timeouts and backoff, and a poisoned
//! replica lock degrades a connection instead of panicking the server.

use realloc_cluster::tcp::{LinkConfig, PrimaryLink, ReplicaServer};
use realloc_cluster::transport::{FrameSink, TransportError};
use realloc_cluster::{Payload, Primary, Replica};
use realloc_core::{JobId, Request, Window};
use realloc_engine::{BackendKind, Engine, EngineConfig};
use realloc_store::{CrashMode, DurableStore, MemIo, RecoverFromDir, StoreIo};
use std::io::Write as _;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn config() -> EngineConfig {
    EngineConfig {
        shards: 2,
        machines_per_shard: 2,
        backend: BackendKind::TheoremOne { gamma: 8 },
        parallel: false,
        journal: true,
        retained_segments: 2,
    }
}

/// A durable engine with `pre` flushed batches, a checkpoint, then
/// `post` more flushed batches (the recovered tail).
fn durable_history(io: &Arc<MemIo>, dir: &Path, pre: usize, post: usize) -> Engine {
    let mut engine = Engine::new(config());
    let store = DurableStore::create(
        Arc::clone(io) as Arc<dyn StoreIo>,
        dir,
        engine.journal().expect("journaled").config(),
    )
    .expect("create store");
    engine.attach_durability(Box::new(store)).expect("attach");
    for i in 0..pre + post {
        if i == pre {
            assert!(engine.checkpoint());
            assert!(engine.durability_error().is_none());
        }
        let id = i as u64 + 1;
        engine.submit(Request::Insert {
            id: JobId(id),
            window: Window::new(id % 25, id % 25 + 2),
        });
        engine.flush_durable().expect("durable flush");
    }
    engine
}

#[test]
fn recovered_primary_bootstraps_replicas_from_the_on_disk_checkpoint() {
    let io = Arc::new(MemIo::new());
    let dir = PathBuf::from("/store");
    let engine = durable_history(&io, &dir, 6, 3);
    let live_digest = engine.state_digest();
    drop(engine); // power loss
    io.crash(CrashMode::SyncedOnly);

    let recovered = Engine::recover_from_store(&*io, &dir).expect("recovery");
    assert_eq!(recovered.state_digest(), live_digest, "no acked batch lost");
    let checkpoint_events = recovered
        .journal()
        .expect("journaled")
        .latest_checkpoint()
        .expect("checkpointed history")
        .events_before;

    let mut primary = Primary::from_recovered(recovered, 1).expect("recovered primary");
    let (owed, frames) = primary.bootstrap();
    assert!(
        owed.is_empty(),
        "nothing unshipped before any replica attaches"
    );
    // The O(tail) path: the *checkpoint* snapshot (strictly fewer events
    // than the recovered total) anchors the stream, and the recovered
    // post-checkpoint tail follows as ordinary frames — the full-state
    // snapshot a plain `Primary::new` would ship never gets serialized.
    match &frames[0].payload {
        Payload::Snapshot { events_applied, .. } => {
            assert_eq!(*events_applied, checkpoint_events);
            assert!(
                *events_applied
                    < primary
                        .engine()
                        .journal()
                        .expect("journaled")
                        .total_events(),
                "bootstrap anchored at the checkpoint, not the full state"
            );
        }
        other => panic!("bootstrap must lead with a snapshot, got {other:?}"),
    }
    assert!(frames.len() > 1, "recovered tail rides behind the snapshot");

    let mut replica = Replica::new();
    for frame in &frames {
        replica.apply(frame).expect("bootstrap frames apply");
    }
    assert_eq!(replica.state_digest(), Some(live_digest));
    replica.validate().expect("replica valid");

    // The recovered lineage keeps streaming: new work reaches the
    // replica through the ordinary frame path.
    primary.submit(Request::Insert {
        id: JobId(500),
        window: Window::new(3, 9),
    });
    let (_report, frames) = primary.flush();
    for frame in &frames {
        replica.apply(frame).expect("post-recovery stream applies");
    }
    assert_eq!(
        replica.state_digest(),
        Some(primary.engine().state_digest())
    );
}

#[test]
fn recovered_primary_without_a_checkpoint_ships_a_full_snapshot() {
    let io = Arc::new(MemIo::new());
    let dir = PathBuf::from("/store");
    let engine = durable_history(&io, &dir, 0, 0);
    drop(engine);
    io.crash(CrashMode::SyncedOnly);
    let recovered = Engine::recover_from_store(&*io, &dir).expect("recovery");
    let mut primary = Primary::from_recovered(recovered, 1).expect("primary");
    let (_owed, frames) = primary.bootstrap();
    assert_eq!(frames.len(), 1, "no checkpoint, no tail: one full snapshot");
    let mut replica = Replica::new();
    replica.apply(&frames[0]).expect("snapshot applies");
    assert_eq!(
        replica.state_digest(),
        Some(primary.engine().state_digest())
    );
}

/// A link policy tight enough to keep failure tests fast while still
/// exercising the backoff ladder.
fn fast_config() -> LinkConfig {
    LinkConfig {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_millis(250),
        write_timeout: Duration::from_millis(250),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(8),
        reconnect_attempts: 3,
        window: 4,
        drain_timeout: Duration::from_millis(400),
    }
}

#[test]
fn connecting_to_a_dead_address_fails_bounded_not_forever() {
    // Bind-then-drop guarantees an unused port.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let start = std::time::Instant::now();
    let err = PrimaryLink::connect_with(addr, fast_config()).expect_err("nothing listens");
    let _ = err.to_string();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "bounded attempts, bounded backoff"
    );
}

#[test]
fn unacked_pipeline_drain_times_out_bounded_and_typed() {
    // A peer that accepts but never acks: the pipelined send succeeds
    // (the frame is in flight), and it is the *drain* — bounded by
    // `drain_timeout` in total, not per ack read — that must fail with
    // the typed error instead of wedging the primary.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let hold = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        // Swallow the frame, send no ack, keep the socket open.
        let _ = std::io::copy(&mut stream, &mut std::io::sink());
    });
    let mut link = PrimaryLink::connect_with(addr, fast_config()).expect("connect");
    assert!(link.is_connected());
    let mut primary = Primary::new(Engine::new(config()), 1).expect("primary");
    primary.submit(Request::Insert {
        id: JobId(1),
        window: Window::new(0, 4),
    });
    let (_report, frames) = primary.flush();
    link.send(&frames[0])
        .expect("pipelined send accepts the frame without an ack");
    assert_eq!(link.in_flight(), 1);
    let start = std::time::Instant::now();
    let err = link.drain().expect_err("no ack ever comes");
    let waited = start.elapsed();
    assert!(
        matches!(err, TransportError::DrainTimeout { in_flight: 1, .. }),
        "typed timeout: {err}"
    );
    // Total bound: well past drain_timeout (400ms) would mean the old
    // per-read accumulation; well under would mean no wait at all.
    assert!(waited >= Duration::from_millis(300), "waited {waited:?}");
    assert!(waited < Duration::from_secs(4), "bounded total: {waited:?}");
    assert!(!link.is_connected(), "failed drain drops the connection");
    drop(link);
    hold.join().expect("holder exits once the link closes");
}

#[test]
fn window_full_send_blocks_and_try_send_reports_window_full() {
    // Same never-acking peer, window 4: four sends fill the pipeline,
    // try_send refuses without blocking, and a blocking send stalls
    // until the drain bound expires.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let hold = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let _ = std::io::copy(&mut stream, &mut std::io::sink());
    });
    let mut link = PrimaryLink::connect_with(addr, fast_config()).expect("connect");
    let mut primary = Primary::new(Engine::new(config()), 1).expect("primary");
    for i in 0..5u64 {
        primary.submit(Request::Insert {
            id: JobId(i + 1),
            window: Window::new(0, 4),
        });
        primary.flush();
    }
    let frames = primary.frames_since(0).expect("retained");
    assert_eq!(frames.len(), 5);
    for frame in &frames[..4] {
        link.send(frame).expect("within the window");
    }
    assert_eq!(link.in_flight(), 4, "window full");
    let err = link.try_send(&frames[4]).expect_err("window exhausted");
    assert!(
        matches!(err, TransportError::WindowFull { window: 4 }),
        "typed, non-blocking: {err}"
    );
    assert!(link.is_connected(), "try_send refusal is not a failure");
    let start = std::time::Instant::now();
    let err = link.send(&frames[4]).expect_err("stall never resolves");
    assert!(
        matches!(err, TransportError::DrainTimeout { .. }),
        "blocked send hits the drain bound: {err}"
    );
    assert!(start.elapsed() < Duration::from_secs(4));
    drop(link);
    hold.join().expect("holder exits once the link closes");
}

#[test]
fn poisoned_replica_lock_degrades_the_connection_and_recovers_on_clear() {
    let server = ReplicaServer::bind("127.0.0.1:0", Replica::new()).expect("bind");
    let mut link = PrimaryLink::connect_with(server.addr(), fast_config()).expect("connect");
    let mut primary = Primary::new(Engine::new(config()), 1).expect("primary");
    let (owed, boot) = primary.bootstrap();
    assert!(owed.is_empty());
    link.send(&boot[0]).expect("bootstrap ships");
    link.drain().expect("bootstrap acked");
    primary.submit(Request::Insert {
        id: JobId(1),
        window: Window::new(0, 4),
    });
    let (_report, frames) = primary.flush();

    // Panic while holding the replica lock: every subsequent handler
    // sees a poisoned mutex.
    let shared = server.replica();
    let poisoner = std::thread::spawn(move || {
        let _guard = shared.lock().expect("first locker");
        panic!("injected panic while holding the replica lock");
    });
    assert!(poisoner.join().is_err(), "the panic is the point");

    // The handler drops the connection without acking. The pipelined
    // error surfaces on whichever call touches the link once the drop
    // lands — the send's own opportunistic ack pump or the drain — and
    // is graceful either way (Closed or Io — never a server panic,
    // never an ack).
    let err = link
        .send(&frames[0])
        .err()
        .or_else(|| link.drain().map(|_| ()).err())
        .expect("poisoned lock degrades");
    assert!(
        matches!(
            err,
            TransportError::Closed | TransportError::Io(_) | TransportError::DrainTimeout { .. }
        ),
        "got {err}"
    );
    assert!(!link.is_connected());
    assert_eq!(
        link.acked_seq(),
        Some(boot[0].seq),
        "the lost frame was never acked; the cumulative ack stays at the bootstrap anchor"
    );
    // Poll briefly: the handler thread records the drop asynchronously.
    let mut waited = 0;
    while server.handlers_poisoned() == 0 && waited < 200 {
        std::thread::sleep(Duration::from_millis(5));
        waited += 1;
    }
    assert_eq!(server.handlers_poisoned(), 1, "the drop is observable");

    // An operator clears the poison (or swaps in a re-bootstrapped
    // replica); the next send lazily redials the still-alive accept
    // loop and replication resumes where it left off.
    server.replica().clear_poison();
    link.send(&frames[0]).expect("redial + resend succeeds");
    assert_eq!(
        link.drain().expect("resend acked"),
        Some(frames[0].seq),
        "cumulative ack resumes at the resent frame"
    );
    assert!(link.is_connected());
    let replica = server.replica();
    let guard = replica.lock().expect("clean lock");
    assert_eq!(guard.state_digest(), Some(primary.engine().state_digest()));
}

#[test]
fn server_survives_a_torrent_of_garbage_frames() {
    // Raw garbage on the wire gets `err` acks or a dropped connection —
    // the server thread never panics and keeps serving honest links.
    let server = ReplicaServer::bind("127.0.0.1:0", Replica::new()).expect("bind");
    {
        let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
        // A plausible length prefix followed by junk, then a hard cut.
        let _ = stream.write_all(&[0, 0, 0, 8, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4]);
        let _ = stream.write_all(&[0xff; 3]);
    }
    let mut link = PrimaryLink::connect_with(server.addr(), fast_config()).expect("connect");
    let mut primary = Primary::new(Engine::new(config()), 1).expect("primary");
    let (_owed, boot) = primary.bootstrap();
    link.send(&boot[0]).expect("honest link unaffected");
    assert_eq!(link.drain().expect("honest link acked"), Some(boot[0].seq));
    assert_eq!(server.handlers_poisoned(), 0);
}
