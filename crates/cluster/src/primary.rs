//! The replication primary: a serving [`Engine`] that tails its own
//! journal into a sequence-numbered, term-fenced frame stream.
//!
//! The primary does not own a transport — it *produces* frames
//! ([`Primary::flush`], [`Primary::poll`], [`Primary::checkpoint`],
//! [`Primary::bootstrap`]) and the embedder pushes them into whatever
//! [`crate::transport::FrameSink`]s its replicas sit behind. That keeps
//! the replication logic a pure function of engine + journal state, so
//! the differential tests can drive it deterministically.

use crate::frame::{Frame, Payload};
use crate::tele::PrimaryTele;
use crate::ClusterError;
use realloc_core::Request;
use realloc_engine::{
    BatchReport, Engine, JournalCursor, JournalEvent, JournalRecord, ResizeError, ResizeReport,
};
use realloc_telemetry::{Severity, Telemetry};
use std::collections::VecDeque;

/// Frames of replicated history the primary retains for lagging-replica
/// catch-up before falling back to a snapshot bootstrap.
pub const DEFAULT_HISTORY_FRAMES: usize = 4096;

/// The streaming side of a replicated engine; see the module docs.
#[derive(Debug)]
pub struct Primary {
    engine: Engine,
    term: u64,
    /// Sequence number the next stream frame will carry.
    next_seq: u64,
    /// Journal position already turned into frames.
    cursor: JournalCursor,
    /// Recent stream frames, oldest first (bounded by `history_cap`).
    history: VecDeque<Frame>,
    history_cap: usize,
    /// `(seq, events_before)` of the latest `check` marker frame, if any
    /// — the anchor for checkpoint-based (O(tail)) replica bootstrap.
    last_check: Option<(u64, u64)>,
    /// Streaming-side instruments ([`Primary::attach_telemetry`]).
    tele: Option<Box<PrimaryTele>>,
}

impl Primary {
    /// Wraps a journaled engine as the replication primary at `term`
    /// (terms start at 1; a promoted replica picks its observed term
    /// plus one). The stream starts at the engine's *current* state —
    /// history already in the journal is covered by the bootstrap
    /// snapshot, not re-shipped.
    pub fn new(engine: Engine, term: u64) -> Result<Primary, ClusterError> {
        if term == 0 {
            return Err(ClusterError::BadTerm);
        }
        let Some(journal) = engine.journal() else {
            return Err(ClusterError::JournalDisabled);
        };
        let cursor = JournalCursor::at_end_of(journal);
        Ok(Primary {
            engine,
            term,
            next_seq: 1,
            cursor,
            history: VecDeque::new(),
            history_cap: DEFAULT_HISTORY_FRAMES,
            last_check: None,
            tele: None,
        })
    }

    /// Wraps an engine **recovered from durable storage**
    /// ([`Engine::recover_from_dir`] via `realloc_store`, or any
    /// journal-replay restart) as a fresh primary at `term`, pre-seeding
    /// the stream so replicas bootstrap from the recovered checkpoint.
    ///
    /// Where [`Primary::new`] starts the stream at the journal's end
    /// (all history folded into future full-snapshot bootstraps), this
    /// constructor anchors it at the journal's **latest checkpoint**:
    /// the post-checkpoint tail is stamped as stream frames `1..` and a
    /// synthetic `(seq 0, events_before)` check anchor is installed, so
    /// [`Primary::bootstrap`] ships the (already durable, typically
    /// much smaller) checkpoint snapshot plus the tail — the O(tail)
    /// path — instead of serializing a fresh full snapshot of the
    /// recovered state. A journal with no checkpoint yet degrades to
    /// exactly [`Primary::new`] semantics.
    pub fn from_recovered(engine: Engine, term: u64) -> Result<Primary, ClusterError> {
        if term == 0 {
            return Err(ClusterError::BadTerm);
        }
        let Some(journal) = engine.journal() else {
            return Err(ClusterError::JournalDisabled);
        };
        let Some(cursor) = journal.checkpoint_cursor() else {
            return Self::new(engine, term);
        };
        let check_events = journal
            .latest_checkpoint()
            .expect("checkpoint_cursor implies a checkpoint")
            .events_before;
        let mut primary = Primary {
            engine,
            term,
            next_seq: 1,
            cursor,
            history: VecDeque::new(),
            history_cap: DEFAULT_HISTORY_FRAMES,
            last_check: None,
            tele: None,
        };
        // Stamp the recovered post-checkpoint tail into the retained
        // history as frames seq 1.. — these are NOT broadcast (there is
        // no one attached yet); they exist so `frames_since(0)` can
        // serve them behind the checkpoint anchor below. A tail longer
        // than the history cap evicts its head, in which case bootstrap
        // falls back to a full snapshot — correct, just not O(tail).
        let _tail = primary.poll();
        primary.last_check = Some((0, check_events));
        Ok(primary)
    }

    /// Attaches a telemetry registry: the wrapped engine gets its full
    /// instrument set ([`Engine::attach_telemetry`]) and the streaming
    /// side adds `cluster_term` / `cluster_next_seq` gauges, per-payload
    /// frame counters, and checkpoint/bootstrap production timings. A
    /// disabled handle detaches both layers.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.engine.attach_telemetry(telemetry);
        self.tele = PrimaryTele::build(telemetry);
        if let Some(tele) = &self.tele {
            tele.term.set(self.term);
            tele.next_seq.set(self.next_seq);
        }
    }

    /// Promotion constructor: resumes the stream of a replica's engine
    /// at `next_seq` under a bumped term. The cursor starts at the end
    /// of the engine's journal — everything in it was applied from the
    /// old stream and must not be re-shipped.
    pub(crate) fn resume(engine: Engine, term: u64, next_seq: u64) -> Primary {
        let journal = engine.journal().expect("replica engines are journaled");
        let cursor = JournalCursor::at_end_of(journal);
        Primary {
            engine,
            term,
            next_seq,
            cursor,
            history: VecDeque::new(),
            history_cap: DEFAULT_HISTORY_FRAMES,
            last_check: None,
            tele: None,
        }
    }

    /// Sets the catch-up history cap (frames retained for
    /// [`Primary::frames_since`]).
    pub fn with_history_cap(mut self, cap: usize) -> Primary {
        self.history_cap = cap;
        self.trim_history();
        self
    }

    /// The wrapped engine (reads: metrics, placements, validation).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access for operations this wrapper does not
    /// mirror. Anything that lands in the journal (flushes, resizes) is
    /// picked up by the next [`Primary::poll`]; do **not** checkpoint
    /// the engine directly — journal truncation can outrun the stream
    /// cursor and force a full re-bootstrap of every replica (use
    /// [`Primary::checkpoint`], which polls first).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Consumes the primary, handing back the engine (demotion).
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// This primary's fencing term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Sequence number the next stream frame will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Enqueues a request (raw id space, as [`Engine::submit`]).
    pub fn submit(&mut self, request: Request) {
        self.engine.submit(request);
    }

    /// Flushes the engine and returns the batch report together with the
    /// replication frames the flush produced (broadcast them to every
    /// attached replica, in order).
    ///
    /// An idle tick (nothing queued) is a **no-op** returning an empty
    /// report: an empty engine flush would bump the flush counter —
    /// state that is part of the digested snapshot — while producing no
    /// frame to ship, silently desyncing every replica's digest.
    ///
    /// Honors the engine's flush-coalescing policy
    /// ([`Primary::set_coalescing`]): a deferred tick returns an empty
    /// report and no frames, so small engine flushes ship as fewer,
    /// larger events frames. Barriers that must see everything flushed
    /// — [`Primary::checkpoint`], [`Primary::bootstrap`],
    /// [`Primary::flush_now`] — always proceed.
    pub fn flush(&mut self) -> (BatchReport, Vec<Frame>) {
        match self.engine.flush_coalesced() {
            Some(report) => (report, self.poll()),
            None => (BatchReport::default(), Vec::new()),
        }
    }

    /// [`Primary::flush`] ignoring any coalescing policy: the barrier
    /// variant for commit points and final drains, where deferred work
    /// must ship now.
    pub fn flush_now(&mut self) -> (BatchReport, Vec<Frame>) {
        if self.engine.queued() == 0 {
            return (BatchReport::default(), Vec::new());
        }
        let report = self.engine.flush();
        (report, self.poll())
    }

    /// Installs (or removes) the wrapped engine's flush-coalescing
    /// policy ([`realloc_engine::CoalesceConfig`]); see
    /// [`Primary::flush`].
    pub fn set_coalescing(&mut self, cfg: Option<realloc_engine::CoalesceConfig>) {
        self.engine.set_flush_coalescing(cfg);
    }

    /// Resizes the engine online and returns the frames carrying the
    /// epoch change (plus any events still unshipped before it).
    pub fn resize(&mut self, shards: usize) -> Result<(ResizeReport, Vec<Frame>), ResizeError> {
        let report = self.engine.resize(shards)?;
        Ok((report, self.poll()))
    }

    /// Rebalances (tenant isolation) and returns the frames, when the
    /// engine decided to act.
    pub fn rebalance(&mut self) -> Result<Option<(ResizeReport, Vec<Frame>)>, ResizeError> {
        Ok(self.engine.rebalance()?.map(|report| (report, self.poll())))
    }

    /// Checkpoints the engine (snapshot into the journal, truncate old
    /// segments) and returns the frames to broadcast: any still-unshipped
    /// events, then a `check` marker carrying the state digest. Replicas
    /// verify the digest and cut their own local checkpoints at the
    /// marker.
    pub fn checkpoint(&mut self) -> Vec<Frame> {
        let t0 = self.tele.as_ref().map(|t| t.t.now_nanos());
        // Ship everything recorded so far *before* truncation can drop
        // it, including the flush `Engine::checkpoint` performs on a
        // non-empty queue.
        let mut frames = self.poll();
        if self.engine.queued() > 0 {
            self.engine.flush();
            frames.extend(self.poll());
        }
        self.engine.checkpoint();
        frames.extend(self.poll());
        let events_applied = self.journal_total();
        // The checkpoint just serialized the full engine snapshot into
        // the journal, and nothing has mutated digested state since —
        // hash that text instead of serializing a second identical copy.
        let digest = realloc_core::snapshot::digest64(
            &self
                .engine
                .journal()
                .expect("primary engines are journaled")
                .latest_checkpoint()
                .expect("Engine::checkpoint just recorded one")
                .snapshot,
        );
        debug_assert_eq!(digest, self.engine.state_digest());
        let marker = self.stamp(Payload::Check {
            events_applied,
            digest,
        });
        self.last_check = Some((marker.seq, events_applied));
        let marker_seq = marker.seq;
        frames.push(marker);
        if let Some(tele) = &self.tele {
            let took = tele
                .t
                .now_nanos()
                .saturating_sub(t0.expect("stamped above"));
            tele.checkpoint_nanos.record(took);
            tele.t
                .point(Severity::Info, "ship_checkpoint", marker_seq, took);
        }
        frames
    }

    /// Turns every journal record past the stream cursor into frames
    /// (one `events` frame per recorded batch, one `epoch` frame per
    /// resize). Normally empty-handed only right after a flush has been
    /// polled; called internally by [`Primary::flush`] and friends.
    ///
    /// If the cursor's history was truncated out from under the stream
    /// (an [`Engine::checkpoint`] issued directly on
    /// [`Primary::engine_mut`]), the unshipped records are gone; the
    /// only sound continuation is a stamped snapshot frame that
    /// re-bootstraps every replica, and that is what this returns.
    pub fn poll(&mut self) -> Vec<Frame> {
        let journal = self
            .engine
            .journal()
            .expect("primary engines are journaled");
        let Some(records) = journal.records_since(self.cursor) else {
            return vec![self.rebootstrap_frame()];
        };
        // Group events batch-by-batch; epochs become their own frames at
        // their exact positions.
        let mut cursor = self.cursor;
        let mut payloads: Vec<Payload> = Vec::new();
        let mut open_batch: Option<Vec<JournalEvent>> = None;
        for record in records {
            cursor.advance(&record);
            match record {
                JournalRecord::Event(e) => match &mut open_batch {
                    Some(events) if events[0].batch == e.batch => events.push(*e),
                    Some(events) => {
                        payloads.push(Payload::Events(std::mem::replace(events, vec![*e])));
                    }
                    None => open_batch = Some(vec![*e]),
                },
                JournalRecord::Epoch(rec) => {
                    if let Some(events) = open_batch.take() {
                        payloads.push(Payload::Events(events));
                    }
                    payloads.push(Payload::Epoch(rec.clone()));
                }
            }
        }
        if let Some(events) = open_batch.take() {
            payloads.push(Payload::Events(events));
        }
        self.cursor = cursor;
        payloads.into_iter().map(|p| self.stamp(p)).collect()
    }

    /// A snapshot frame bootstrapping a **new** replica, preceded by any
    /// frames still owed to the existing stream (broadcast those to the
    /// already-attached replicas first — the snapshot covers them, so
    /// the joiner must not see them again).
    ///
    /// When the journal's latest checkpoint is still fully covered by
    /// the retained frame history, the bootstrap ships that *checkpoint*
    /// snapshot plus the history tail instead of a fresh full snapshot —
    /// the new replica catches up from the checkpoint in O(tail),
    /// exercising exactly the engine's recovery path.
    pub fn bootstrap(&mut self) -> (Vec<Frame>, Vec<Frame>) {
        let t0 = self.tele.as_ref().map(|t| t.t.now_nanos());
        let (owed, frames) = self.bootstrap_inner();
        if let Some(tele) = &self.tele {
            let took = tele
                .t
                .now_nanos()
                .saturating_sub(t0.expect("stamped above"));
            tele.bootstrap_nanos.record(took);
            // Joiner bootstrap snapshots bypass `stamp` (they are not
            // stream frames); count the shipment here.
            tele.frames_snapshot.inc();
            tele.t
                .point(Severity::Info, "bootstrap", frames.len() as u64, took);
        }
        (owed, frames)
    }

    fn bootstrap_inner(&mut self) -> (Vec<Frame>, Vec<Frame>) {
        let mut owed = self.poll();
        // A snapshot cut while requests sit queued would hand the
        // joiner those pending queues — and the events frame of the
        // flush that services them would then be rejected ("locally
        // queued requests would be swept into the recorded batch").
        // Flush first and ship the result to the existing stream.
        if self.engine.queued() > 0 {
            self.engine.flush();
            owed.extend(self.poll());
        }
        // O(tail) path: latest checkpoint snapshot + retained frames
        // after its marker. Guarded by the recorded event count so a
        // checkpoint cut behind this wrapper's back (directly on
        // `engine_mut`) can never mis-anchor a joiner.
        if let Some((check_seq, check_events)) = self.last_check {
            if let Some(tail) = self.frames_since(check_seq) {
                let journal = self
                    .engine
                    .journal()
                    .expect("primary engines are journaled");
                if let Some(cp) = journal.latest_checkpoint() {
                    if cp.events_before == check_events {
                        let mut frames = vec![Frame {
                            term: self.term,
                            seq: check_seq,
                            payload: Payload::Snapshot {
                                events_applied: cp.events_before,
                                text: cp.snapshot.clone(),
                            },
                            trace: None,
                        }];
                        frames.extend(tail);
                        return (owed, frames);
                    }
                }
            }
        }
        let snapshot = self.snapshot_frame();
        (owed, vec![snapshot])
    }

    /// Retained stream frames with sequence numbers past `last_seq`, for
    /// catching up a lagging but already-bootstrapped replica. `None`
    /// when this primary cannot serve the position — the history no
    /// longer reaches back that far, **or** `last_seq` is *ahead* of
    /// this primary's stream (the replica followed a lineage this
    /// primary never saw; only a re-bootstrap can reconcile it) — fall
    /// back to [`Primary::bootstrap`].
    pub fn frames_since(&self, last_seq: u64) -> Option<Vec<Frame>> {
        if last_seq + 1 == self.next_seq {
            return Some(Vec::new()); // already caught up
        }
        if last_seq + 1 > self.next_seq {
            return None; // ahead of this lineage: re-bootstrap
        }
        let oldest = self.history.front()?.seq;
        if last_seq + 1 < oldest {
            return None; // evicted
        }
        Some(
            self.history
                .iter()
                .filter(|f| f.seq > last_seq)
                .cloned()
                .collect(),
        )
    }

    /// Stamps a stream payload with this term and the next sequence
    /// number, retaining it in the catch-up history. An `events` payload
    /// whose batch was traced ([`Engine::flush_batch_traced`]) gets the
    /// batch's context as the frame's out-of-band annotation, so the
    /// replica's `apply` event lands in the same trace.
    fn stamp(&mut self, payload: Payload) -> Frame {
        if let Some(tele) = &self.tele {
            match &payload {
                Payload::Events(_) => tele.frames_events.inc(),
                Payload::Epoch(_) => tele.frames_epoch.inc(),
                Payload::Check { .. } => tele.frames_check.inc(),
                Payload::Snapshot { .. } => tele.frames_snapshot.inc(),
            }
            tele.next_seq.set(self.next_seq + 1);
            tele.term.set(self.term);
        }
        let trace = match &payload {
            Payload::Events(events) => events
                .first()
                .and_then(|e| self.engine.trace_of_batch(e.batch)),
            _ => None,
        };
        let frame = Frame {
            term: self.term,
            seq: self.next_seq,
            payload,
            trace,
        };
        self.next_seq += 1;
        self.history.push_back(frame.clone());
        self.trim_history();
        frame
    }

    fn trim_history(&mut self) {
        while self.history.len() > self.history_cap {
            self.history.pop_front();
        }
    }

    /// Current-state snapshot frame anchored at the last shipped seq.
    fn snapshot_frame(&self) -> Frame {
        Frame {
            term: self.term,
            seq: self.next_seq - 1,
            payload: Payload::Snapshot {
                events_applied: self.journal_total(),
                text: realloc_core::snapshot::Restorable::snapshot_text(&self.engine),
            },
            trace: None,
        }
    }

    /// A *stamped* snapshot frame for the truncated-cursor fallback: it
    /// takes a stream seq so every replica treats it as the stream —
    /// re-bootstrapping in place — instead of a joiner-only side channel.
    fn rebootstrap_frame(&mut self) -> Frame {
        // Service anything still queued first: the unshipped records are
        // already lost to truncation, so the flush's effects fold into
        // the snapshot instead of wedging replicas on restored queues.
        if self.engine.queued() > 0 {
            self.engine.flush();
        }
        let journal = self
            .engine
            .journal()
            .expect("primary engines are journaled");
        self.cursor = JournalCursor::at_end_of(journal);
        let payload = Payload::Snapshot {
            events_applied: self.journal_total(),
            text: realloc_core::snapshot::Restorable::snapshot_text(&self.engine),
        };
        self.stamp(payload)
    }

    fn journal_total(&self) -> u64 {
        self.engine
            .journal()
            .expect("primary engines are journaled")
            .total_events()
    }
}
