//! # realloc-cluster
//!
//! Journal-shipping replication for the [`realloc_engine`] serving
//! layer: primary/replica streaming, snapshot-bootstrapped catch-up,
//! fenced failover, and read scaling — over pluggable transports,
//! including a std-only TCP transport.
//!
//! PRs 3–4 made the engine's journal replay and recovery **byte-identical
//! and content-pure**: replaying the same recorded stream lands on the
//! same placements, telemetry, and snapshot text, every time. That
//! determinism is the state-machine-replication contract, and this crate
//! cashes it in:
//!
//! * a [`Primary`] wraps a journaled [`Engine`](realloc_engine::Engine)
//!   and tails its own journal into a stream of sequence-numbered
//!   [`Frame`]s — a one-time snapshot bootstrap, then per-flush event
//!   frames, epoch (resize) frames at their exact positions, and
//!   periodic checkpoint markers carrying a state digest;
//! * a [`Replica`] applies frames through the engine's verified-replay
//!   machinery, serves read-only queries (`window_of`, `metrics`,
//!   `validate`) for read scaling, and bootstraps from the latest
//!   checkpoint in O(tail);
//! * **failover is fenced**: every frame carries the primary's term;
//!   [`Replica::promote`] bumps it, and a deposed primary's frames are
//!   rejected by everything that has heard from the new one — no
//!   acknowledged event is ever lost, no split-brain write stream;
//! * two transports: the in-process [`transport::LocalLink`] /
//!   [`transport::channel`] for tests and benches, and the
//!   length-prefixed TCP transport ([`tcp::ReplicaServer`] /
//!   [`tcp::PrimaryLink`]) with a threaded accept loop — `std::net`
//!   only, no external dependencies. The TCP link is **pipelined**: up
//!   to [`tcp::LinkConfig::window`] frames in flight, cumulative
//!   batched acks, explicit backpressure, and a bounded
//!   [`FrameSink::drain`] as the per-link commit barrier;
//! * **quorum group commit**: a [`ReplicationGroup`] fans the stream
//!   out to N links and acknowledges the client once ≥ quorum replicas
//!   have acked ([`ReplicationGroup::commit`]), with per-link repair
//!   and a committed-sequence durability floor.
//!
//! # Quickstart
//!
//! ```
//! use realloc_cluster::{Primary, Replica};
//! use realloc_core::{JobId, Request, Window};
//! use realloc_engine::{BackendKind, Engine, EngineConfig};
//!
//! let engine = Engine::new(EngineConfig {
//!     shards: 2,
//!     journal: true, // primaries must journal: the journal IS the stream
//!     ..EngineConfig::default()
//! });
//! let mut primary = Primary::new(engine, 1).unwrap();
//! let mut replica = Replica::new();
//!
//! // One-time bootstrap, then stream every flush.
//! let (_owed, boot) = primary.bootstrap();
//! for f in &boot {
//!     replica.apply(f).unwrap();
//! }
//! for i in 0..32u64 {
//!     primary.submit(Request::Insert { id: JobId(i), window: Window::new(0, 256) });
//! }
//! let (report, frames) = primary.flush();
//! assert_eq!(report.processed(), 32);
//! for f in &frames {
//!     replica.apply(f).unwrap();
//! }
//!
//! // The replica is byte-identical to the primary — reads scale out.
//! assert_eq!(replica.active_count(), 32);
//! assert_eq!(replica.state_digest(), Some(primary.engine().state_digest()));
//!
//! // Failover: promote the replica; the old primary's term is fenced.
//! let promoted = replica.promote().unwrap();
//! assert_eq!(promoted.term(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod group;
pub mod primary;
pub mod relay;
pub mod replica;
pub mod tcp;
mod tele;
pub mod transport;

pub use frame::{Frame, Payload, MAX_FRAME_BYTES};
pub use group::{GroupError, ReplicationGroup};
pub use primary::{Primary, DEFAULT_HISTORY_FRAMES};
pub use relay::JournalRelay;
pub use replica::{ApplyError, Replica};
pub use tcp::{LinkConfig, PrimaryLink, ReplicaServer};
pub use transport::{FrameSink, TransportError};

/// Why a cluster role could not be constructed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// Primaries must run journaled engines — the journal is the stream.
    JournalDisabled,
    /// Fencing terms start at 1.
    BadTerm,
    /// The replica has no state yet (no bootstrap snapshot applied).
    NotBootstrapped,
    /// The replica was already promoted or retired.
    Retired,
    /// A [`JournalRelay`] bootstrap was requested while the shared
    /// engine had unflushed queued requests. The relay never flushes a
    /// shared engine (the write path belongs to the serving tier), and a
    /// snapshot cut now would hand the joiner the pending queues — the
    /// events frame of the flush that later services them would be
    /// rejected. Flush, poll the relay, and bootstrap again.
    QueuedRequests,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::JournalDisabled => write!(
                f,
                "replication needs EngineConfig::journal — the journal is the stream"
            ),
            ClusterError::BadTerm => write!(f, "fencing terms start at 1"),
            ClusterError::NotBootstrapped => {
                write!(f, "replica holds no state (bootstrap it first)")
            }
            ClusterError::Retired => write!(f, "replica was already promoted/retired"),
            ClusterError::QueuedRequests => write!(
                f,
                "shared engine has queued requests — flush before bootstrapping a joiner"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}
