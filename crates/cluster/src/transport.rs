//! Pluggable frame transports.
//!
//! The primary produces [`Frame`]s; a [`FrameSink`] delivers them to one
//! replica. Since PR 8 delivery is **pipelined**: [`FrameSink::send`]
//! means *accepted for delivery*, and the replica's acknowledgement
//! catches up asynchronously — [`FrameSink::acked_seq`] reports the
//! highest cumulatively acknowledged sequence, and [`FrameSink::drain`]
//! blocks until every in-flight frame is acked (the commit barrier the
//! failover guarantee — "no acknowledged event is ever lost" — is
//! stated in terms of). Implementations:
//!
//! * [`LocalLink`] — an in-process link applying frames synchronously
//!   to a shared [`Replica`] (tests, benches, same-process read
//!   replicas). Here `send` *is* the ack: the window is effectively 1
//!   and `drain` never waits.
//! * [`crate::tcp::PrimaryLink`] — length-prefixed frames over
//!   [`std::net::TcpStream`] with a configurable window of unacked
//!   frames in flight, acknowledged cumulatively by the remote
//!   [`crate::tcp::ReplicaServer`].
//!
//! A plain fire-and-forget [`channel`] pair is also provided for
//! in-process streaming without any acknowledgement (its `acked_seq` is
//! always `None`, so it can never satisfy a quorum — use it for tees,
//! not commits).

use crate::frame::Frame;
use crate::replica::{ApplyError, Replica};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Why a frame could not be delivered-and-acknowledged.
#[derive(Debug)]
pub enum TransportError {
    /// The link's byte stream failed.
    Io(std::io::Error),
    /// The replica received the frame and refused it (fencing, gap,
    /// divergence, corruption — the replica-side [`ApplyError`], as
    /// text when it crossed a wire).
    Rejected(String),
    /// The link is closed (receiver dropped, connection gone).
    Closed,
    /// The in-flight window is full and the caller asked not to block
    /// (see [`crate::tcp::PrimaryLink::try_send`]).
    WindowFull {
        /// The configured window size that is currently exhausted.
        window: usize,
    },
    /// Draining the pipeline did not complete within the configured
    /// total bound ([`crate::tcp::LinkConfig::drain_timeout`]). The
    /// connection is dropped; frames past the last cumulative ack are
    /// un-acked and must be re-shipped or re-bootstrapped.
    DrainTimeout {
        /// How long the drain waited before giving up.
        waited: Duration,
        /// Frames still unacknowledged when the bound expired.
        in_flight: usize,
    },
    /// The peer violated the ack protocol (a regressing cumulative ack,
    /// an ack above the shipped window, or a garbage ack line). The
    /// connection is dropped; the link's acknowledged-sequence state is
    /// left exactly as it was before the bad ack.
    Protocol(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport I/O failed: {e}"),
            TransportError::Rejected(m) => write!(f, "replica rejected the frame: {m}"),
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::WindowFull { window } => {
                write!(f, "in-flight window full ({window} frames unacked)")
            }
            TransportError::DrainTimeout { waited, in_flight } => write!(
                f,
                "pipeline drain timed out after {waited:?} with {in_flight} frames in flight"
            ),
            TransportError::Protocol(m) => write!(f, "ack protocol violation: {m}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Delivers frames to one replica. `Ok(())` from [`send`] means the
/// frame was *accepted for delivery*; the acknowledgement that makes an
/// event durable on the replica is tracked by [`acked_seq`] and forced
/// by [`drain`]. Synchronous sinks (where send does wait for the ack)
/// simply keep `acked_seq` equal to the last sent sequence and let
/// `drain` return immediately.
///
/// [`send`]: FrameSink::send
/// [`acked_seq`]: FrameSink::acked_seq
/// [`drain`]: FrameSink::drain
pub trait FrameSink {
    /// Sends one frame. Pipelined sinks may return before the replica
    /// acknowledges; a returned error can therefore also surface a
    /// problem with an *earlier* in-flight frame.
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError>;

    /// Blocks until every in-flight frame is acknowledged (or the
    /// sink's drain bound expires), returning the highest acknowledged
    /// sequence. The default suits synchronous sinks: nothing is ever
    /// in flight, so it just reports [`FrameSink::acked_seq`].
    fn drain(&mut self) -> Result<Option<u64>, TransportError> {
        Ok(self.acked_seq())
    }

    /// Blocks only until the cumulative acknowledgement reaches `seq`
    /// (or the pipeline empties), returning the new ack floor. This is
    /// the group-commit primitive: committing through batch *i* − 1
    /// must not wait for batch *i*'s frames that are still usefully in
    /// flight. The default over-approximates with a full
    /// [`FrameSink::drain`] — correct for every sink, just stronger
    /// than required.
    fn drain_to(&mut self, seq: u64) -> Result<Option<u64>, TransportError> {
        let _ = seq;
        self.drain()
    }

    /// The highest sequence the replica has cumulatively acknowledged,
    /// `None` before any ack (or for sinks that never ack). A
    /// re-anchoring bootstrap snapshot legitimately resets this to the
    /// snapshot's (lower) anchor sequence.
    fn acked_seq(&self) -> Option<u64> {
        None
    }

    /// Frames sent but not yet acknowledged.
    fn in_flight(&self) -> usize {
        0
    }
}

/// In-process synchronous link: applies each frame to a shared replica
/// under its lock. The `Ok` of [`FrameSink::send`] *is* the replica's
/// acknowledgement (the apply already happened), so [`FrameSink::drain`]
/// never waits and [`FrameSink::acked_seq`] tracks the last applied
/// sequence. Clones track their own acked sequence independently.
#[derive(Clone, Debug)]
pub struct LocalLink {
    replica: Arc<Mutex<Replica>>,
    /// Highest sequence this handle has applied-and-acked.
    acked: Option<u64>,
}

impl LocalLink {
    /// Links to a shared replica cell.
    pub fn new(replica: Arc<Mutex<Replica>>) -> LocalLink {
        LocalLink {
            replica,
            acked: None,
        }
    }

    /// The shared replica (read scaling: query it from any thread).
    pub fn replica(&self) -> &Arc<Mutex<Replica>> {
        &self.replica
    }

    /// Applies a frame, returning the replica's own typed error (the
    /// trait surface flattens it to text; fencing tests want the type).
    pub fn apply(&self, frame: &Frame) -> Result<(), ApplyError> {
        self.replica
            .lock()
            .expect("replica mutex poisoned")
            .apply(frame)
    }
}

impl FrameSink for LocalLink {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.apply(frame)
            .map_err(|e| TransportError::Rejected(e.to_string()))?;
        self.acked = Some(frame.seq);
        Ok(())
    }

    fn acked_seq(&self) -> Option<u64> {
        self.acked
    }
}

/// Fire-and-forget in-process channel pair: the sink clones frames into
/// an [`mpsc`] queue; the source hands them out for the consumer to
/// apply. No acknowledgement — `acked_seq` stays `None` forever, so a
/// [`ChannelSink`] can never satisfy a quorum; use [`LocalLink`] or the
/// TCP link where the "no acknowledged event lost" contract matters.
pub fn channel() -> (ChannelSink, ChannelSource) {
    let (tx, rx) = mpsc::channel();
    (ChannelSink { tx }, ChannelSource { rx })
}

/// Sending half of [`channel`].
#[derive(Clone, Debug)]
pub struct ChannelSink {
    tx: mpsc::Sender<Frame>,
}

impl FrameSink for ChannelSink {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.tx
            .send(frame.clone())
            .map_err(|_| TransportError::Closed)
    }
}

/// Receiving half of [`channel`].
#[derive(Debug)]
pub struct ChannelSource {
    rx: mpsc::Receiver<Frame>,
}

impl ChannelSource {
    /// Next queued frame, blocking; `None` when every sink is dropped.
    pub fn recv(&self) -> Option<Frame> {
        self.rx.recv().ok()
    }

    /// Next queued frame without blocking.
    pub fn try_recv(&self) -> Option<Frame> {
        self.rx.try_recv().ok()
    }

    /// Drains every queued frame into `replica`, stopping at the first
    /// rejection. Returns the number applied.
    pub fn drain_into(&self, replica: &mut Replica) -> Result<usize, ApplyError> {
        let mut applied = 0usize;
        while let Some(frame) = self.try_recv() {
            replica.apply(&frame)?;
            applied += 1;
        }
        Ok(applied)
    }
}
