//! Pluggable frame transports.
//!
//! The primary produces [`Frame`]s; a [`FrameSink`] delivers them to one
//! replica and reports whether the replica **acknowledged** applying
//! them — acknowledgement is what the failover guarantee is stated in
//! terms of ("no acknowledged event is ever lost"). Two implementations
//! ship:
//!
//! * [`LocalLink`] — an in-process link applying frames synchronously
//!   to a shared [`Replica`] (tests, benches, same-process read
//!   replicas).
//! * [`crate::tcp::PrimaryLink`] — length-prefixed frames over
//!   [`std::net::TcpStream`], acknowledged per frame by the remote
//!   [`crate::tcp::ReplicaServer`].
//!
//! A plain fire-and-forget [`channel`] pair is also provided for
//! pipelined in-process streaming (the receiver applies frames when it
//! drains).

use crate::frame::Frame;
use crate::replica::{ApplyError, Replica};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Why a frame could not be delivered-and-acknowledged.
#[derive(Debug)]
pub enum TransportError {
    /// The link's byte stream failed.
    Io(std::io::Error),
    /// The replica received the frame and refused it (fencing, gap,
    /// divergence, corruption — the replica-side [`ApplyError`], as
    /// text when it crossed a wire).
    Rejected(String),
    /// The link is closed (receiver dropped, connection gone).
    Closed,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport I/O failed: {e}"),
            TransportError::Rejected(m) => write!(f, "replica rejected the frame: {m}"),
            TransportError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Delivers frames to one replica; `Ok(())` means the replica applied
/// and acknowledged the frame.
pub trait FrameSink {
    /// Sends one frame and waits for the acknowledgement.
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError>;
}

/// In-process synchronous link: applies each frame to a shared replica
/// under its lock. The `Ok` of [`FrameSink::send`] *is* the replica's
/// acknowledgement (the apply already happened).
#[derive(Clone, Debug)]
pub struct LocalLink {
    replica: Arc<Mutex<Replica>>,
}

impl LocalLink {
    /// Links to a shared replica cell.
    pub fn new(replica: Arc<Mutex<Replica>>) -> LocalLink {
        LocalLink { replica }
    }

    /// The shared replica (read scaling: query it from any thread).
    pub fn replica(&self) -> &Arc<Mutex<Replica>> {
        &self.replica
    }

    /// Applies a frame, returning the replica's own typed error (the
    /// trait surface flattens it to text; fencing tests want the type).
    pub fn apply(&self, frame: &Frame) -> Result<(), ApplyError> {
        self.replica
            .lock()
            .expect("replica mutex poisoned")
            .apply(frame)
    }
}

impl FrameSink for LocalLink {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.apply(frame)
            .map_err(|e| TransportError::Rejected(e.to_string()))
    }
}

/// Fire-and-forget in-process channel pair: the sink clones frames into
/// an [`mpsc`] queue; the source hands them out for the consumer to
/// apply. No acknowledgement — use [`LocalLink`] where the "no
/// acknowledged event lost" contract matters.
pub fn channel() -> (ChannelSink, ChannelSource) {
    let (tx, rx) = mpsc::channel();
    (ChannelSink { tx }, ChannelSource { rx })
}

/// Sending half of [`channel`].
#[derive(Clone, Debug)]
pub struct ChannelSink {
    tx: mpsc::Sender<Frame>,
}

impl FrameSink for ChannelSink {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.tx
            .send(frame.clone())
            .map_err(|_| TransportError::Closed)
    }
}

/// Receiving half of [`channel`].
#[derive(Debug)]
pub struct ChannelSource {
    rx: mpsc::Receiver<Frame>,
}

impl ChannelSource {
    /// Next queued frame, blocking; `None` when every sink is dropped.
    pub fn recv(&self) -> Option<Frame> {
        self.rx.recv().ok()
    }

    /// Next queued frame without blocking.
    pub fn try_recv(&self) -> Option<Frame> {
        self.rx.try_recv().ok()
    }

    /// Drains every queued frame into `replica`, stopping at the first
    /// rejection. Returns the number applied.
    pub fn drain_into(&self, replica: &mut Replica) -> Result<usize, ApplyError> {
        let mut applied = 0usize;
        while let Some(frame) = self.try_recv() {
            replica.apply(&frame)?;
            applied += 1;
        }
        Ok(applied)
    }
}
