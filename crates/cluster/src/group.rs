//! Quorum group commit: one [`Primary`] fanned out over N
//! [`FrameSink`]s, acknowledged to the client once ≥ quorum replicas
//! have cumulatively acked.
//!
//! The group separates *shipping* from *committing*, riding the
//! pipelined links:
//!
//! * [`ReplicationGroup::flush`] flushes the primary (honoring its
//!   coalescing policy) and broadcasts the produced frames down every
//!   link **without waiting** — each link keeps its own window of
//!   unacked frames in flight, and a link that errors is simply left
//!   lagging (its failure is remembered for the next commit to weigh).
//! * [`ReplicationGroup::commit`] is the client acknowledgement point:
//!   it returns once at least `quorum` links have cumulatively acked
//!   everything shipped, draining laggards (each bounded by its own
//!   drain timeout) and attempting [`ReplicationGroup::repair`] on
//!   links whose connection dropped mid-stream. If fewer than `quorum`
//!   replicas can be brought to the commit point the typed
//!   [`GroupError::QuorumLost`] reports how close it got — the caller
//!   decides between retrying, shedding a replica, or failing over.
//! * [`ReplicationGroup::committed_seq`] is the group's durability
//!   floor: the `quorum`-th highest acked sequence — every frame at or
//!   below it is applied on at least `quorum` replicas, so a failover
//!   that promotes the most-caught-up replica never loses a committed
//!   event.
//!
//! Pipelined group commit: because shipping and committing are split,
//! an embedder can overlap the primary's next batch with the replicas'
//! application of the previous one — flush batch *i*, then commit
//! through batch *i − 1* — turning the classic group-commit latency
//! trade into nearly free throughput (see the `engine_replication`
//! bench's `quorum2` row).

use crate::frame::Frame;
use crate::primary::Primary;
use crate::tele::GroupTele;
use crate::transport::{FrameSink, TransportError};
use realloc_core::Request;
use realloc_engine::{BatchReport, ResizeError, ResizeReport};
use realloc_telemetry::{Severity, Telemetry, TraceCtx};

/// Why a quorum operation failed.
#[derive(Debug)]
pub enum GroupError {
    /// The group could not be constructed (zero quorum).
    BadQuorum,
    /// Fewer than `needed` replicas reached the commit point.
    QuorumLost {
        /// The configured quorum.
        needed: usize,
        /// Replicas that had acked through the commit sequence.
        acked: usize,
        /// The last per-link failure observed while trying, if any.
        last_error: Option<String>,
    },
    /// A resize failed on the primary (nothing was shipped).
    Resize(ResizeError),
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupError::BadQuorum => write!(f, "quorum must be at least 1"),
            GroupError::QuorumLost {
                needed,
                acked,
                last_error,
            } => {
                write!(f, "quorum lost: {acked}/{needed} replicas at commit point")?;
                if let Some(e) = last_error {
                    write!(f, " (last error: {e})")?;
                }
                Ok(())
            }
            GroupError::Resize(e) => write!(f, "resize failed: {e}"),
        }
    }
}

impl std::error::Error for GroupError {}

impl From<ResizeError> for GroupError {
    fn from(e: ResizeError) -> Self {
        GroupError::Resize(e)
    }
}

/// A [`Primary`] replicating to N sinks with quorum group commit; see
/// the module docs.
#[derive(Debug)]
pub struct ReplicationGroup {
    primary: Primary,
    links: Vec<Box<dyn FrameSink + Send>>,
    quorum: usize,
    /// Last failure per link (index-aligned), cleared on success —
    /// commit reports the freshest one when the quorum is missed.
    last_errors: Vec<Option<String>>,
    /// The newest traced frame shipped but not yet quorum-acked:
    /// `(seq, ctx)`. Commit emits a `quorum_ack` trace point once the
    /// committed floor covers it, closing the causal chain that started
    /// at the service tier. Runtime metadata only — never digested.
    pending_commit_trace: Option<(u64, TraceCtx)>,
    tele: Option<Box<GroupTele>>,
}

impl std::fmt::Debug for dyn FrameSink + Send {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FrameSink(acked={:?}, in_flight={})",
            self.acked_seq(),
            self.in_flight()
        )
    }
}

impl ReplicationGroup {
    /// Wraps `primary` with a quorum requirement (how many replicas
    /// must ack before [`ReplicationGroup::commit`] succeeds). A quorum
    /// of 0 is rejected — commit would mean nothing.
    pub fn new(primary: Primary, quorum: usize) -> Result<ReplicationGroup, GroupError> {
        if quorum == 0 {
            return Err(GroupError::BadQuorum);
        }
        Ok(ReplicationGroup {
            primary,
            links: Vec::new(),
            quorum,
            last_errors: Vec::new(),
            pending_commit_trace: None,
            tele: None,
        })
    }

    /// The configured quorum.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Attached replica links.
    pub fn replicas(&self) -> usize {
        self.links.len()
    }

    /// The wrapped primary (reads: term, seq, engine metrics).
    pub fn primary(&self) -> &Primary {
        &self.primary
    }

    /// Mutable primary access (checkpoint cadence, history cap tuning).
    /// Frames produced behind the group's back are *not* broadcast —
    /// prefer the group's own wrappers.
    pub fn primary_mut(&mut self) -> &mut Primary {
        &mut self.primary
    }

    /// Consumes the group, handing back the primary and its links.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(self) -> (Primary, Vec<Box<dyn FrameSink + Send>>) {
        (self.primary, self.links)
    }

    /// Attaches group-commit instruments (`cluster_group_*`) and the
    /// primary's full set. Attach per-link telemetry on each
    /// [`crate::tcp::PrimaryLink`] *before* boxing it into the group.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.primary.attach_telemetry(telemetry);
        self.tele = GroupTele::build(telemetry);
    }

    /// Adds a replica behind `sink`: broadcasts anything the existing
    /// stream is still owed, then ships the joiner its bootstrap
    /// snapshot (+ catch-up tail). The joiner's frames are pipelined —
    /// the next [`ReplicationGroup::commit`] confirms arrival.
    pub fn add_replica(
        &mut self,
        mut sink: Box<dyn FrameSink + Send>,
    ) -> Result<(), TransportError> {
        let (owed, boot) = self.primary.bootstrap();
        self.broadcast(&owed);
        for frame in &boot {
            sink.send(frame)?;
        }
        self.links.push(sink);
        self.last_errors.push(None);
        Ok(())
    }

    /// Enqueues a request on the primary.
    pub fn submit(&mut self, request: Request) {
        self.primary.submit(request);
    }

    /// Flushes the primary (honoring its coalescing policy) and
    /// broadcasts the produced frames down every link without waiting
    /// for acks. Returns the batch report and the highest sequence
    /// shipped so far — the commit target for
    /// [`ReplicationGroup::commit_through`].
    pub fn flush(&mut self) -> (BatchReport, u64) {
        let (report, frames) = self.primary.flush();
        self.note_traced(&frames);
        self.broadcast(&frames);
        (report, self.shipped_seq())
    }

    /// [`ReplicationGroup::flush`] ignoring any coalescing policy (the
    /// pre-commit barrier variant).
    pub fn flush_now(&mut self) -> (BatchReport, u64) {
        let (report, frames) = self.primary.flush_now();
        self.note_traced(&frames);
        self.broadcast(&frames);
        (report, self.shipped_seq())
    }

    /// Remembers the newest traced frame in `frames` so the next
    /// successful commit can emit its `quorum_ack` span point.
    fn note_traced(&mut self, frames: &[Frame]) {
        if let Some(f) = frames.iter().rev().find(|f| f.trace.is_some()) {
            self.pending_commit_trace = f.trace.map(|tc| (f.seq, tc));
        }
    }

    /// Resizes the primary's engine online and broadcasts the epoch
    /// frames.
    pub fn resize(&mut self, shards: usize) -> Result<ResizeReport, GroupError> {
        let (report, frames) = self.primary.resize(shards)?;
        self.broadcast(&frames);
        Ok(report)
    }

    /// Checkpoints the primary and broadcasts the marker (replicas cut
    /// their own checkpoints at it).
    pub fn checkpoint(&mut self) -> u64 {
        let frames = self.primary.checkpoint();
        self.broadcast(&frames);
        self.shipped_seq()
    }

    /// The highest stream sequence shipped so far (0 before any frame).
    pub fn shipped_seq(&self) -> u64 {
        self.primary.next_seq() - 1
    }

    /// The group's durability floor: the `quorum`-th highest
    /// cumulatively acked sequence across the links (0 when fewer than
    /// `quorum` links have acked anything). Every frame at or below it
    /// is applied on at least `quorum` replicas.
    pub fn committed_seq(&self) -> u64 {
        let mut acked: Vec<u64> = self
            .links
            .iter()
            .map(|l| l.acked_seq().unwrap_or(0))
            .collect();
        if acked.len() < self.quorum {
            return 0;
        }
        acked.sort_unstable_by(|a, b| b.cmp(a));
        acked[self.quorum - 1]
    }

    /// The client acknowledgement point: returns once ≥ quorum links
    /// have cumulatively acked everything shipped. See
    /// [`ReplicationGroup::commit_through`].
    pub fn commit(&mut self) -> Result<u64, GroupError> {
        self.commit_through(self.shipped_seq())
    }

    /// Waits until at least `quorum` links have acked through `seq`:
    /// first a free pass over already-arrived acks, then draining
    /// laggards only as far as the commit point ([`FrameSink::drain_to`],
    /// each bounded by its own drain timeout), then one
    /// [`ReplicationGroup::repair`] attempt per still-short link.
    /// Returns the group's committed floor on success. On failure the
    /// typed [`GroupError::QuorumLost`] carries how many replicas made
    /// it and the freshest per-link error.
    pub fn commit_through(&mut self, seq: u64) -> Result<u64, GroupError> {
        let t0 = self.tele.as_ref().map(|t| t.t.now_nanos());
        let result = self.commit_inner(seq);
        if let Some(tele) = &self.tele {
            let took = tele
                .t
                .now_nanos()
                .saturating_sub(t0.expect("stamped above"));
            tele.commit_wait_nanos.record(took);
            match &result {
                Ok(committed) => {
                    tele.commits.inc();
                    tele.committed_seq.set(*committed);
                    if let Some((traced_seq, tc)) = self.pending_commit_trace {
                        if traced_seq <= *committed {
                            tele.t
                                .point_in(tc, Severity::Info, "quorum_ack", traced_seq, took);
                            self.pending_commit_trace = None;
                        }
                    }
                }
                Err(GroupError::QuorumLost { needed, acked, .. }) => {
                    tele.quorum_failures.inc();
                    tele.t
                        .incident("quorum_lost", *needed as u64, *acked as u64);
                }
                Err(_) => tele.quorum_failures.inc(),
            }
        }
        result
    }

    fn commit_inner(&mut self, seq: u64) -> Result<u64, GroupError> {
        fn at_target(link: &(dyn FrameSink + Send), seq: u64) -> bool {
            link.acked_seq().unwrap_or(0) >= seq
        }
        // Pass 1: acks that already arrived (pipelining win: often all).
        let mut reached = self
            .links
            .iter()
            .filter(|l| at_target(l.as_ref(), seq))
            .count();
        if reached >= self.quorum {
            return Ok(self.committed_seq());
        }
        // Pass 2: drain laggards — but only *to the commit point*. A
        // full drain would also wait for the batch shipped after `seq`,
        // destroying the ship-batch-i / commit-batch-i−1 overlap that
        // pipelined group commit exists for.
        for i in 0..self.links.len() {
            if reached >= self.quorum {
                break;
            }
            if at_target(self.links[i].as_ref(), seq) {
                continue;
            }
            match self.links[i].drain_to(seq) {
                Ok(_) => self.last_errors[i] = None,
                Err(e) => self.last_errors[i] = Some(e.to_string()),
            }
            if at_target(self.links[i].as_ref(), seq) {
                reached += 1;
            }
        }
        // Pass 3: links whose connection dropped mid-stream lost their
        // in-flight frames — re-ship from the last cumulative ack.
        for i in 0..self.links.len() {
            if reached >= self.quorum {
                break;
            }
            if at_target(self.links[i].as_ref(), seq) {
                continue;
            }
            match self.repair_link(i) {
                Ok(()) => self.last_errors[i] = None,
                Err(e) => self.last_errors[i] = Some(e.to_string()),
            }
            if at_target(self.links[i].as_ref(), seq) {
                reached += 1;
            }
        }
        if reached >= self.quorum {
            Ok(self.committed_seq())
        } else {
            Err(GroupError::QuorumLost {
                needed: self.quorum,
                acked: reached,
                last_error: self.last_errors.iter().rev().find_map(|e| e.clone()),
            })
        }
    }

    /// Brings every lagging link back to the shipped position:
    /// re-ships retained history from each link's last cumulative ack
    /// ([`Primary::frames_since`]), falling back to a full bootstrap
    /// when the history no longer reaches (or the resend is rejected —
    /// e.g. the replica applied frames whose acks died with the old
    /// connection). Returns the number of links repaired.
    pub fn repair(&mut self) -> usize {
        let target = self.shipped_seq();
        let mut repaired = 0;
        for i in 0..self.links.len() {
            if self.links[i].acked_seq().unwrap_or(0) >= target {
                continue;
            }
            match self.repair_link(i) {
                Ok(()) => {
                    self.last_errors[i] = None;
                    repaired += 1;
                }
                Err(e) => self.last_errors[i] = Some(e.to_string()),
            }
        }
        repaired
    }

    fn repair_link(&mut self, i: usize) -> Result<(), TransportError> {
        let from = self.links[i].acked_seq().unwrap_or(0);
        if let Some(frames) = self.primary.frames_since(from) {
            let resend = || -> Result<(), TransportError> {
                for frame in &frames {
                    self.links[i].send(frame)?;
                }
                self.links[i].drain()?;
                Ok(())
            }();
            if resend.is_ok() {
                return Ok(());
            }
            // A rejected resend usually means the replica already
            // applied past `from` (its acks died with the connection):
            // fall through to a re-anchoring bootstrap.
        }
        let (owed, boot) = self.primary.bootstrap();
        self.broadcast(&owed);
        for frame in &boot {
            self.links[i].send(frame)?;
        }
        self.links[i].drain()?;
        Ok(())
    }

    /// Ships `frames` down every link, recording (not propagating)
    /// per-link failures — the quorum decides what matters, at commit.
    fn broadcast(&mut self, frames: &[Frame]) {
        for (i, link) in self.links.iter_mut().enumerate() {
            for frame in frames {
                if let Err(e) = link.send(frame) {
                    self.last_errors[i] = Some(e.to_string());
                    break;
                }
            }
        }
    }
}
