//! The replication frame: the unit of the primary → replica stream.
//!
//! Every frame carries a **fencing term** and a **sequence number**, then
//! one of four payloads:
//!
//! * `snapshot` — a full engine snapshot (`realloc_core::snapshot` v1
//!   framing, embedded verbatim). Bootstraps or re-bootstraps a replica;
//!   its `seq` anchors where the stream resumes (`seq + 1` is the next
//!   expected stream frame).
//! * `events` — one recorded flush: every journal event of a single
//!   batch, in service order, with the recorded outcomes.
//! * `epoch` — an elastic resize/rebalance: the complete new routing
//!   table, applied at this exact stream position.
//! * `check` — a checkpoint marker: the primary's since-genesis event
//!   count and state digest, so replicas verify non-divergence with 8
//!   bytes instead of a shipped snapshot (and checkpoint their own
//!   journals for O(tail) local recovery).
//!
//! # Text encoding
//!
//! One header line `R <term> <seq> <kind> …`, then the payload lines.
//! The format extends the journal's line discipline; a length-prefixed
//! byte frame (see `realloc_core::textio::write_frame`) carries it over
//! byte streams:
//!
//! ```text
//! R 1 0 snapshot 0 6812       # term 1, seq 0, 0 events applied,
//! # realloc snapshot v1       #   6812 verbatim snapshot lines follow
//! !begin engine
//! …
//! !end
//! R 1 1 events 3              # term 1, seq 1, 3 events of one batch
//! + 7 0 17 4 12 ok 1 0        # batch 7, shard 0: insert j17 → 1 realloc
//! + 7 2 21 4 12 ok 0 0
//! - 7 2 9 err unknown
//! R 1 2 epoch 1 6 7 5         # epoch 1: 6 shards, tenant 7 → shard 5
//! R 1 3 check 4 0x1badd00d    # 4 events since genesis, state digest
//! ```
//!
//! Every malformed-input class — truncated snapshot bodies, bad counts,
//! garbage kinds, invalid routing tables — parses to a located
//! [`ParseError`], never a panic: frames arrive over the network.

use realloc_core::snapshot::SNAPSHOT_HEADER;
use realloc_core::textio::{line_content as strip, ParseError};
use realloc_core::{JobId, Request, Window};
use realloc_engine::journal::{Costs, ErrCode};
use realloc_engine::{EngineRouter, EpochRecord, JournalEvent, TENANT_SHIFT};
use realloc_telemetry::TraceCtx;

/// Hard cap on one wire frame's byte length (shared by both ends of the
/// TCP transport). A snapshot frame's size is dominated by the embedded
/// engine snapshot, which is linear in active jobs; 256 MiB of text is
/// far beyond any deployment this engine serves, so a larger declared
/// length is treated as a corrupt or hostile prefix.
pub const MAX_FRAME_BYTES: u32 = 256 << 20;

/// What one frame carries; see the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Full engine snapshot; bootstraps or re-bootstraps a replica.
    Snapshot {
        /// Events since genesis covered by this snapshot.
        events_applied: u64,
        /// The snapshot document (`Restorable::snapshot_text`).
        text: String,
    },
    /// One recorded flush (all events share a batch number).
    Events(Vec<JournalEvent>),
    /// A routing-table change at this stream position.
    Epoch(EpochRecord),
    /// Checkpoint marker: verify state, anchor O(tail) catch-up.
    Check {
        /// Events since genesis at the marker.
        events_applied: u64,
        /// The primary's [`realloc_engine::Engine::state_digest`].
        digest: u64,
    },
}

/// One replication frame; see the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Fencing term of the primary that emitted the frame. Replicas
    /// reject frames whose term is behind the highest they have seen,
    /// which is what makes failover safe: a deposed primary can keep
    /// streaming, but nothing accepts its frames.
    pub term: u64,
    /// Stream sequence number. Stream frames (`events`/`epoch`/`check`)
    /// are numbered contiguously; a `snapshot` frame carries the seq of
    /// the last stream frame its state covers.
    pub seq: u64,
    /// The payload.
    pub payload: Payload,
    /// Out-of-band causal trace annotation: the sampled request whose
    /// batch this frame ships. Encoded as a `# trace <id> <origin>`
    /// comment line after the payload — `line_content` strips comments,
    /// so the annotation is invisible to the payload grammar, never
    /// enters digested journal text, and its presence or absence cannot
    /// change replica state or digests. Replicas use it to record an
    /// `apply` event under the same trace id as the primary's spans.
    pub trace: Option<TraceCtx>,
}

impl Frame {
    /// Serializes to the text encoding (module docs).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64);
        match &self.payload {
            Payload::Snapshot {
                events_applied,
                text,
            } => {
                let nlines = text.lines().count();
                writeln!(
                    out,
                    "R {} {} snapshot {events_applied} {nlines}",
                    self.term, self.seq
                )
                .unwrap();
                for line in text.lines() {
                    out.push_str(line);
                    out.push('\n');
                }
            }
            Payload::Events(events) => {
                writeln!(out, "R {} {} events {}", self.term, self.seq, events.len()).unwrap();
                for e in events {
                    match e.request {
                        Request::Insert { id, window } => write!(
                            out,
                            "+ {} {} {} {} {}",
                            e.batch,
                            e.shard,
                            id.0,
                            window.start(),
                            window.end()
                        )
                        .unwrap(),
                        Request::Delete { id } => {
                            write!(out, "- {} {} {}", e.batch, e.shard, id.0).unwrap()
                        }
                    }
                    match e.result {
                        Ok(c) => writeln!(out, " ok {} {}", c.reallocations, c.migrations).unwrap(),
                        Err(code) => writeln!(out, " err {code}").unwrap(),
                    }
                }
            }
            Payload::Epoch(rec) => {
                write!(
                    out,
                    "R {} {} epoch {} {}",
                    self.term, self.seq, rec.epoch, rec.shards
                )
                .unwrap();
                for &(tenant, shard) in &rec.pins {
                    write!(out, " {tenant} {shard}").unwrap();
                }
                out.push('\n');
            }
            Payload::Check {
                events_applied,
                digest,
            } => {
                writeln!(
                    out,
                    "R {} {} check {events_applied} {digest:#x}",
                    self.term, self.seq
                )
                .unwrap();
            }
        }
        if let Some(tc) = &self.trace {
            // A comment line: stripped by the line discipline, so the
            // digested payload is byte-identical with or without it.
            writeln!(out, "# trace {} {}", tc.id, tc.origin_nanos).unwrap();
        }
        out
    }

    /// Parses one frame from its text encoding. Graceful [`ParseError`]s
    /// on every malformed-input class (module docs); trailing content
    /// after the payload is an error, not silently ignored.
    pub fn parse(text: &str) -> Result<Frame, ParseError> {
        let mut lines = text.lines().enumerate();
        let (header_idx, header) = lines
            .by_ref()
            .find(|(_, raw)| !strip(raw).is_empty())
            .ok_or(ParseError {
                line: 0,
                message: "empty frame".to_string(),
            })?;
        let line = header_idx + 1;
        let err = |message: String| ParseError { line, message };
        let content = strip(header);
        let mut parts = content.split_whitespace();
        if parts.next() != Some("R") {
            return Err(err(format!("frame must start with 'R', got '{content}'")));
        }
        let num = |tok: Option<&str>, what: &str| -> Result<u64, ParseError> {
            tok.ok_or_else(|| err(format!("missing {what}")))?
                .parse::<u64>()
                .map_err(|e| err(format!("bad {what}: {e}")))
        };
        let term = num(parts.next(), "term")?;
        let seq = num(parts.next(), "seq")?;
        if term == 0 {
            return Err(err("term 0 is reserved (terms start at 1)".to_string()));
        }
        let kind = parts
            .next()
            .ok_or_else(|| err("missing frame kind".to_string()))?;
        let payload = match kind {
            "snapshot" => {
                let events_applied = num(parts.next(), "events-applied count")?;
                let nlines = num(parts.next(), "snapshot line count")? as usize;
                finish(&mut parts, line)?;
                let mut text = String::new();
                let mut taken = 0usize;
                // `while`, not `for` + break: a for-loop would pull one
                // line past the body before noticing it is done, eating
                // whatever follows (e.g. the trace annotation).
                while taken < nlines {
                    let Some((_, raw)) = lines.next() else {
                        break;
                    };
                    text.push_str(raw);
                    text.push('\n');
                    taken += 1;
                }
                if taken < nlines {
                    return Err(err(format!(
                        "snapshot frame truncated: {taken} of {nlines} lines present"
                    )));
                }
                if !text.starts_with(SNAPSHOT_HEADER) {
                    return Err(err(format!(
                        "snapshot body does not start with '{SNAPSHOT_HEADER}'"
                    )));
                }
                Payload::Snapshot {
                    events_applied,
                    text,
                }
            }
            "events" => {
                let n = num(parts.next(), "event count")? as usize;
                finish(&mut parts, line)?;
                if n == 0 {
                    return Err(err("events frame declares zero events".to_string()));
                }
                // The declared count is wire input: pre-size only up to
                // a small bound so a hostile count cannot drive a huge
                // (or overflowing) allocation before the payload lines
                // fail to materialize.
                let mut events = Vec::with_capacity(n.min(4096));
                let mut batch: Option<u64> = None;
                while events.len() < n {
                    let Some((i, raw)) = lines.next() else {
                        return Err(err(format!(
                            "events frame truncated: {} of {n} events present",
                            events.len()
                        )));
                    };
                    let content = strip(raw);
                    if content.is_empty() {
                        continue;
                    }
                    let event = parse_event(i + 1, content)?;
                    if *batch.get_or_insert(event.batch) != event.batch {
                        return Err(ParseError {
                            line: i + 1,
                            message: format!(
                                "events frame mixes batches {} and {}",
                                batch.expect("just inserted"),
                                event.batch
                            ),
                        });
                    }
                    events.push(event);
                }
                Payload::Events(events)
            }
            "epoch" => {
                let epoch = num(parts.next(), "epoch")?;
                let shards = num(parts.next(), "epoch shard count")? as usize;
                let mut pins: Vec<(u64, usize)> = Vec::new();
                while let Some(tok) = parts.next() {
                    let tenant = tok
                        .parse::<u64>()
                        .map_err(|e| err(format!("bad pinned tenant: {e}")))?;
                    let shard = parts
                        .next()
                        .ok_or_else(|| err("pin without a shard (truncated table)".to_string()))?
                        .parse::<usize>()
                        .map_err(|e| err(format!("bad pin shard: {e}")))?;
                    if tenant >> (64 - TENANT_SHIFT) != 0 {
                        return Err(err(format!(
                            "pinned tenant {tenant} exceeds the tenant id space"
                        )));
                    }
                    if pins.iter().any(|&(t, _)| t == tenant) {
                        return Err(err(format!("tenant {tenant} pinned twice")));
                    }
                    pins.push((tenant, shard));
                }
                // Full table validation through the router itself, as the
                // journal parser does for its epoch records.
                EngineRouter::from_parts(epoch, shards, pins.iter().copied())
                    .map_err(|e| err(format!("invalid epoch table: {e}")))?;
                Payload::Epoch(EpochRecord {
                    epoch,
                    shards,
                    pins,
                })
            }
            "check" => {
                let events_applied = num(parts.next(), "events-applied count")?;
                let digest_tok = parts
                    .next()
                    .ok_or_else(|| err("missing digest".to_string()))?;
                let digest = digest_tok
                    .strip_prefix("0x")
                    .ok_or_else(|| err(format!("digest '{digest_tok}' must be 0x-hex")))
                    .and_then(|hex| {
                        u64::from_str_radix(hex, 16)
                            .map_err(|e| err(format!("bad digest '{digest_tok}': {e}")))
                    })?;
                finish(&mut parts, line)?;
                Payload::Check {
                    events_applied,
                    digest,
                }
            }
            other => return Err(err(format!("unknown frame kind '{other}'"))),
        };
        // Comments after the payload may carry the out-of-band trace
        // annotation; anything non-comment is still trailing garbage.
        let mut trace = None;
        for (i, raw) in lines {
            if !strip(raw).is_empty() {
                return Err(ParseError {
                    line: i + 1,
                    message: format!("trailing content after the frame payload: '{}'", strip(raw)),
                });
            }
            if trace.is_none() {
                trace = parse_trace_comment(raw);
            }
        }
        Ok(Frame {
            term,
            seq,
            payload,
            trace,
        })
    }
}

/// Recognizes a `# trace <id> <origin>` annotation comment. Lenient by
/// design: a comment that isn't exactly this shape (or carries id 0,
/// the "untraced" sentinel) is an ordinary comment, never an error —
/// old peers must keep interoperating with annotated streams and vice
/// versa.
fn parse_trace_comment(raw: &str) -> Option<TraceCtx> {
    let comment = raw.trim_start().strip_prefix('#')?;
    let mut parts = comment.split_whitespace();
    if parts.next() != Some("trace") {
        return None;
    }
    let id = parts.next()?.parse::<u64>().ok().filter(|&id| id != 0)?;
    let origin_nanos = parts.next()?.parse::<u64>().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some(TraceCtx { id, origin_nanos })
}

fn finish(parts: &mut std::str::SplitWhitespace<'_>, line: usize) -> Result<(), ParseError> {
    match parts.next() {
        None => Ok(()),
        Some(extra) => Err(ParseError {
            line,
            message: format!("unexpected trailing token '{extra}'"),
        }),
    }
}

/// Parses one `events` payload line:
/// `+ <batch> <shard> <id> <start> <end> <outcome>` /
/// `- <batch> <shard> <id> <outcome>`.
fn parse_event(line: usize, content: &str) -> Result<JournalEvent, ParseError> {
    let err = |message: String| ParseError { line, message };
    let mut parts = content.split_whitespace();
    let op = parts.next().expect("non-empty line has a token");
    let num = |tok: Option<&str>, what: &str| -> Result<u64, ParseError> {
        tok.ok_or_else(|| err(format!("missing {what}")))?
            .parse::<u64>()
            .map_err(|e| err(format!("bad {what}: {e}")))
    };
    let batch = num(parts.next(), "batch")?;
    let shard = num(parts.next(), "shard")? as usize;
    let id = JobId(num(parts.next(), "id")?);
    let request = match op {
        "+" => {
            let start = num(parts.next(), "arrival")?;
            let end = num(parts.next(), "deadline")?;
            if end <= start {
                return Err(err(format!("deadline {end} must exceed arrival {start}")));
            }
            Request::Insert {
                id,
                window: Window::new(start, end),
            }
        }
        "-" => Request::Delete { id },
        other => return Err(err(format!("bad event op '{other}'"))),
    };
    let tag = parts
        .next()
        .ok_or_else(|| err("missing outcome".to_string()))?;
    let result = match tag {
        "ok" => Ok(Costs {
            reallocations: num(parts.next(), "reallocations")?,
            migrations: num(parts.next(), "migrations")?,
        }),
        "err" => {
            let code_raw = parts
                .next()
                .ok_or_else(|| err("missing error code".to_string()))?;
            Err(ErrCode::parse(code_raw)
                .ok_or_else(|| err(format!("bad error code '{code_raw}'")))?)
        }
        other => return Err(err(format!("bad outcome tag '{other}'"))),
    };
    if let Some(extra) = parts.next() {
        return Err(err(format!("unexpected trailing token '{extra}'")));
    }
    Ok(JournalEvent {
        batch,
        shard,
        request,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let text = frame.to_text();
        let back = Frame::parse(&text).unwrap_or_else(|e| panic!("parse {text:?}: {e}"));
        assert_eq!(back, frame);
    }

    #[test]
    fn frames_round_trip() {
        round_trip(Frame {
            term: 1,
            seq: 0,
            payload: Payload::Snapshot {
                events_applied: 42,
                text: format!("{SNAPSHOT_HEADER}\n!begin engine\nc 1 1 naive 0 1 4 0\n!end\n"),
            },
            trace: None,
        });
        round_trip(Frame {
            term: 3,
            seq: 17,
            payload: Payload::Events(vec![
                JournalEvent {
                    batch: 9,
                    shard: 2,
                    request: Request::Insert {
                        id: JobId(7),
                        window: Window::new(4, 12),
                    },
                    result: Ok(Costs {
                        reallocations: 1,
                        migrations: 0,
                    }),
                },
                JournalEvent {
                    batch: 9,
                    shard: 0,
                    request: Request::Delete { id: JobId(5) },
                    result: Err(ErrCode::Unknown),
                },
            ]),
            trace: None,
        });
        round_trip(Frame {
            term: 2,
            seq: 18,
            payload: Payload::Epoch(EpochRecord {
                epoch: 4,
                shards: 6,
                pins: vec![(7, 5)],
            }),
            trace: None,
        });
        round_trip(Frame {
            term: 2,
            seq: 19,
            payload: Payload::Check {
                events_applied: 12345,
                digest: 0xdead_beef_cafe_f00d,
            },
            trace: None,
        });
    }

    /// The out-of-band trace annotation round-trips on every payload
    /// kind — and, because it is a comment, its presence never changes
    /// the digested payload text.
    #[test]
    fn trace_annotation_round_trips_and_stays_out_of_band() {
        let tc = TraceCtx {
            id: 0xfeed_beef,
            origin_nanos: 123_456,
        };
        let events = Payload::Events(vec![JournalEvent {
            batch: 9,
            shard: 2,
            request: Request::Insert {
                id: JobId(7),
                window: Window::new(4, 12),
            },
            result: Ok(Costs {
                reallocations: 1,
                migrations: 0,
            }),
        }]);
        for payload in [
            events,
            Payload::Epoch(EpochRecord {
                epoch: 4,
                shards: 6,
                pins: vec![(7, 5)],
            }),
            Payload::Check {
                events_applied: 12,
                digest: 0xabc,
            },
            Payload::Snapshot {
                events_applied: 42,
                text: format!("{SNAPSHOT_HEADER}\n!begin engine\nc 1 1 naive 0 1 4 0\n!end\n"),
            },
        ] {
            let traced = Frame {
                term: 3,
                seq: 17,
                payload: payload.clone(),
                trace: Some(tc),
            };
            round_trip(traced.clone());
            let plain = Frame {
                trace: None,
                ..traced.clone()
            };
            // Annotated text = plain text + one comment line; stripping
            // comment lines recovers the plain encoding byte-for-byte.
            let annotated = traced.to_text();
            assert_eq!(
                annotated,
                format!("{}# trace {} {}\n", plain.to_text(), tc.id, tc.origin_nanos)
            );
            let stripped: String = annotated
                .lines()
                .filter(|l| !strip(l).is_empty() || payload_owns_line(&plain, l))
                .map(|l| format!("{l}\n"))
                .collect();
            assert_eq!(stripped, plain.to_text());
        }
    }

    /// Snapshot bodies keep comment lines verbatim; the filter above
    /// must not drop them when comparing encodings.
    fn payload_owns_line(frame: &Frame, line: &str) -> bool {
        match &frame.payload {
            Payload::Snapshot { text, .. } => text.lines().any(|l| l == line),
            _ => false,
        }
    }

    /// Malformed or unrelated comments are plain comments — never an
    /// error, never a bogus trace context (old and new peers mix).
    #[test]
    fn odd_comments_parse_as_untraced() {
        for text in [
            "R 1 2 check 0 0x0\n# just a comment\n",
            "R 1 2 check 0 0x0\n# trace\n",
            "R 1 2 check 0 0x0\n# trace banana 5\n",
            "R 1 2 check 0 0x0\n# trace 0 5\n",
            "R 1 2 check 0 0x0\n# trace 7 5 extra\n",
        ] {
            let frame = Frame::parse(text).unwrap_or_else(|e| panic!("{text:?}: {e}"));
            assert_eq!(frame.trace, None, "{text:?}");
        }
        // The first well-formed annotation wins.
        let frame = Frame::parse("R 1 2 check 0 0x0\n# trace 7 5\n# trace 8 6\n").unwrap();
        assert_eq!(
            frame.trace,
            Some(TraceCtx {
                id: 7,
                origin_nanos: 5
            })
        );
    }

    #[test]
    fn malformed_frames_error_gracefully() {
        for (what, text) in [
            ("empty", ""),
            ("not a frame", "hello world\n"),
            ("term zero", "R 0 1 check 0 0x0\n"),
            ("bad term", "R x 1 check 0 0x0\n"),
            ("missing kind", "R 1 2\n"),
            ("unknown kind", "R 1 2 gossip 4\n"),
            ("events zero", "R 1 2 events 0\n"),
            (
                "events hostile count",
                "R 1 2 events 18446744073709551615\n+ 0 0 1 0 4 ok 0 0\n",
            ),
            ("events truncated", "R 1 2 events 2\n+ 0 0 1 0 4 ok 0 0\n"),
            (
                "events mixed batches",
                "R 1 2 events 2\n+ 0 0 1 0 4 ok 0 0\n+ 1 0 2 0 4 ok 0 0\n",
            ),
            ("event bad op", "R 1 2 events 1\n* 0 0 1 0 4 ok 0 0\n"),
            ("event bad window", "R 1 2 events 1\n+ 0 0 1 4 4 ok 0 0\n"),
            ("event bad outcome", "R 1 2 events 1\n+ 0 0 1 0 4 maybe\n"),
            ("event bad code", "R 1 2 events 1\n- 0 0 1 err nope\n"),
            ("event trailing", "R 1 2 events 1\n- 0 0 1 err unknown 9\n"),
            (
                "snapshot truncated",
                "R 1 0 snapshot 0 5\n# realloc snapshot v1\n",
            ),
            (
                "snapshot bad header",
                "R 1 0 snapshot 0 1\nnot a snapshot\n",
            ),
            ("epoch zero shards", "R 1 2 epoch 1 0\n"),
            ("epoch pins cover all", "R 1 2 epoch 1 1 7 0\n"),
            ("epoch pin out of range", "R 1 2 epoch 1 2 7 9\n"),
            ("epoch pin truncated", "R 1 2 epoch 1 4 7\n"),
            ("epoch pin duplicated", "R 1 2 epoch 1 4 7 1 7 2\n"),
            ("check bad digest", "R 1 2 check 0 g00d\n"),
            ("check decimal digest", "R 1 2 check 0 123\n"),
            ("header trailing", "R 1 2 check 0 0x0 extra\n"),
            ("payload trailing", "R 1 2 check 0 0x0\nstray line\n"),
        ] {
            let e = Frame::parse(text);
            assert!(e.is_err(), "{what}: parsed {text:?} as {e:?}");
        }
    }
}
