//! [`JournalRelay`]: the replication stream for an engine that is
//! *shared* with a serving tier.
//!
//! [`crate::Primary`] consumes its [`Engine`] by value — the right shape
//! when replication owns the write path. A
//! [`realloc_service`-style](https://docs.rs) serving tier instead owns
//! the engine behind an `Arc<Mutex<_>>` so socket handlers can flush it
//! concurrently. The relay tails that shared engine's journal into
//! exactly the same sequence-numbered, term-fenced [`Frame`] stream a
//! `Primary` would produce: call [`JournalRelay::poll`] after (or on a
//! cadence around) service flushes and push the frames into any
//! [`crate::transport::FrameSink`].
//!
//! Because the journal is the stream, nothing is lost between polls:
//! whatever batches the service tier flushed since the last poll come
//! out as `events` frames in order, each carrying its batch's
//! out-of-band trace annotation when the flush was traced
//! ([`realloc_engine::Engine::flush_batch_traced`]) — the causal chain
//! minted at the service edge survives the relay untouched.

use crate::frame::{Frame, Payload};
use crate::tele::PrimaryTele;
use crate::ClusterError;
use realloc_engine::{Engine, JournalCursor, JournalEvent, JournalRecord};
use realloc_telemetry::Telemetry;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// Tails a shared engine's journal into the replication frame stream;
/// see the module docs.
#[derive(Debug)]
pub struct JournalRelay {
    engine: Arc<Mutex<Engine>>,
    term: u64,
    /// Sequence number the next stream frame will carry.
    next_seq: u64,
    /// Journal position already turned into frames.
    cursor: JournalCursor,
    /// Recent stream frames, oldest first (bounded by `history_cap`).
    history: VecDeque<Frame>,
    history_cap: usize,
    /// Streaming-side instruments ([`JournalRelay::attach_telemetry`]).
    tele: Option<Box<PrimaryTele>>,
}

impl JournalRelay {
    /// Wraps a shared journaled engine as the stream source at `term`.
    /// The stream starts at the engine's *current* journal position —
    /// prior history is covered by the bootstrap snapshot, not
    /// re-shipped.
    pub fn new(engine: Arc<Mutex<Engine>>, term: u64) -> Result<JournalRelay, ClusterError> {
        if term == 0 {
            return Err(ClusterError::BadTerm);
        }
        let cursor = {
            let guard = engine.lock().expect("engine mutex poisoned");
            let Some(journal) = guard.journal() else {
                return Err(ClusterError::JournalDisabled);
            };
            JournalCursor::at_end_of(journal)
        };
        Ok(JournalRelay {
            engine,
            term,
            next_seq: 1,
            cursor,
            history: VecDeque::new(),
            history_cap: crate::primary::DEFAULT_HISTORY_FRAMES,
            tele: None,
        })
    }

    /// Attaches the streaming-side instruments (`cluster_term`,
    /// `cluster_next_seq`, per-payload frame counters). The *engine's*
    /// instruments are the serving tier's to attach — the relay never
    /// re-wires a shared engine's telemetry.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele = PrimaryTele::build(telemetry);
        if let Some(tele) = &self.tele {
            tele.term.set(self.term);
            tele.next_seq.set(self.next_seq);
        }
    }

    /// Sets the catch-up history cap (frames retained for
    /// [`JournalRelay::frames_since`]).
    pub fn with_history_cap(mut self, cap: usize) -> JournalRelay {
        self.history_cap = cap;
        self.trim_history();
        self
    }

    /// This relay's fencing term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Sequence number the next stream frame will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Turns every journal record past the stream cursor into frames —
    /// one `events` frame per recorded batch, one `epoch` frame per
    /// resize — exactly as [`crate::Primary::poll`] would. If the
    /// cursor's history was truncated out from under the stream (a
    /// checkpoint cut on the shared engine), the stream re-anchors the
    /// way [`crate::Primary`] bootstraps after recovery: a snapshot
    /// frame carrying the latest *checkpoint* (stamped with the event
    /// count that checkpoint actually covers) followed by the
    /// post-checkpoint tail as ordinary frames — replicas re-bootstrap
    /// and replay forward without losing the records recorded after the
    /// cut.
    pub fn poll(&mut self) -> Vec<Frame> {
        let engine = Arc::clone(&self.engine);
        let guard = engine.lock().expect("engine mutex poisoned");
        self.poll_locked(&guard)
    }

    fn poll_locked(&mut self, engine: &MutexGuard<'_, Engine>) -> Vec<Frame> {
        let journal = engine.journal().expect("relay engines are journaled");
        let mut cursor = self.cursor;
        let mut payloads: Vec<Payload> = Vec::new();
        if journal.records_since(cursor).is_none() {
            // The cursor's history was truncated out from under the
            // stream. A snapshot stamped with `total_events()` but
            // carrying checkpoint-time text would silently diverge every
            // replica; pair the checkpoint snapshot with the event count
            // it covers and stream the tail recorded after it.
            match (journal.latest_checkpoint(), journal.checkpoint_cursor()) {
                (Some(cp), Some(at)) => {
                    payloads.push(Payload::Snapshot {
                        events_applied: cp.events_before,
                        text: cp.snapshot.clone(),
                    });
                    cursor = at;
                }
                // Truncation only happens through a checkpoint cut, so
                // landing here means the cursor never belonged to this
                // journal. A live snapshot is consistent with the
                // engine's own event count by construction.
                _ => {
                    payloads.push(Payload::Snapshot {
                        events_applied: journal.total_events(),
                        text: realloc_core::snapshot::Restorable::snapshot_text(&**engine),
                    });
                    cursor = JournalCursor::at_end_of(journal);
                }
            }
        }
        if let Some(records) = journal.records_since(cursor) {
            let mut open_batch: Option<Vec<JournalEvent>> = None;
            for record in records {
                cursor.advance(&record);
                match record {
                    JournalRecord::Event(e) => match &mut open_batch {
                        Some(events) if events[0].batch == e.batch => events.push(*e),
                        Some(events) => {
                            payloads.push(Payload::Events(std::mem::replace(events, vec![*e])));
                        }
                        None => open_batch = Some(vec![*e]),
                    },
                    JournalRecord::Epoch(rec) => {
                        if let Some(events) = open_batch.take() {
                            payloads.push(Payload::Events(events));
                        }
                        payloads.push(Payload::Epoch(rec.clone()));
                    }
                }
            }
            if let Some(events) = open_batch.take() {
                payloads.push(Payload::Events(events));
            }
        }
        self.cursor = cursor;
        payloads
            .into_iter()
            .map(|p| self.stamp(engine, p))
            .collect()
    }

    /// A snapshot frame bootstrapping a **new** replica, preceded by any
    /// frames still owed to the existing stream (broadcast those to
    /// already-attached replicas first — the snapshot covers them, so
    /// the joiner must not see them again).
    ///
    /// The relay never flushes the shared engine itself, and a snapshot
    /// cut while requests sit queued would hand the joiner those pending
    /// queues — the events frame of the flush that later services them
    /// would then be rejected (the same hazard `Primary::bootstrap`
    /// flushes to avoid). So bootstrap refuses with
    /// [`ClusterError::QueuedRequests`] when the engine has queued
    /// requests: the serving tier must flush (and the relay poll the
    /// resulting frames) before a joiner can be cut a snapshot.
    pub fn bootstrap(&mut self) -> Result<(Vec<Frame>, Frame), ClusterError> {
        let engine = Arc::clone(&self.engine);
        let guard = engine.lock().expect("engine mutex poisoned");
        if guard.queued() > 0 {
            return Err(ClusterError::QueuedRequests);
        }
        let owed = self.poll_locked(&guard);
        let snapshot = Frame {
            term: self.term,
            seq: self.next_seq - 1,
            payload: Payload::Snapshot {
                events_applied: guard
                    .journal()
                    .expect("relay engines are journaled")
                    .total_events(),
                text: realloc_core::snapshot::Restorable::snapshot_text(&*guard),
            },
            trace: None,
        };
        if let Some(tele) = &self.tele {
            tele.frames_snapshot.inc();
        }
        Ok((owed, snapshot))
    }

    /// Retained stream frames with sequence numbers past `last_seq`, for
    /// catching up a lagging but already-bootstrapped replica. `None`
    /// when the history no longer reaches back that far or `last_seq` is
    /// ahead of this stream — fall back to [`JournalRelay::bootstrap`].
    pub fn frames_since(&self, last_seq: u64) -> Option<Vec<Frame>> {
        if last_seq + 1 == self.next_seq {
            return Some(Vec::new());
        }
        if last_seq + 1 > self.next_seq {
            return None;
        }
        let oldest = self.history.front()?.seq;
        if last_seq + 1 < oldest {
            return None;
        }
        Some(
            self.history
                .iter()
                .filter(|f| f.seq > last_seq)
                .cloned()
                .collect(),
        )
    }

    /// Stamps a stream payload with this term and the next sequence
    /// number, retaining it in the catch-up history. An `events` payload
    /// whose batch was traced gets the batch's context as the frame's
    /// out-of-band annotation — see [`crate::frame::Frame::trace`].
    fn stamp(&mut self, engine: &Engine, payload: Payload) -> Frame {
        if let Some(tele) = &self.tele {
            match &payload {
                Payload::Events(_) => tele.frames_events.inc(),
                Payload::Epoch(_) => tele.frames_epoch.inc(),
                Payload::Check { .. } => tele.frames_check.inc(),
                Payload::Snapshot { .. } => tele.frames_snapshot.inc(),
            }
            tele.next_seq.set(self.next_seq + 1);
            tele.term.set(self.term);
        }
        let trace = match &payload {
            Payload::Events(events) => events.first().and_then(|e| engine.trace_of_batch(e.batch)),
            _ => None,
        };
        let frame = Frame {
            term: self.term,
            seq: self.next_seq,
            payload,
            trace,
        };
        self.next_seq += 1;
        self.history.push_back(frame.clone());
        self.trim_history();
        frame
    }

    fn trim_history(&mut self) {
        while self.history.len() > self.history_cap {
            self.history.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_core::{JobId, Request, Window};
    use realloc_engine::{Engine, EngineConfig, FlushMode};

    fn shared_engine() -> Arc<Mutex<Engine>> {
        Arc::new(Mutex::new(Engine::new(EngineConfig {
            shards: 2,
            journal: true,
            ..EngineConfig::default()
        })))
    }

    #[test]
    fn relay_streams_flushes_into_replica() {
        let engine = shared_engine();
        let mut relay = JournalRelay::new(Arc::clone(&engine), 1).unwrap();
        let mut replica = crate::Replica::new();
        let (owed, boot) = relay.bootstrap().unwrap();
        assert!(owed.is_empty());
        replica.apply(&boot).unwrap();

        {
            let mut eng = engine.lock().unwrap();
            for i in 0..16u64 {
                eng.submit(Request::Insert {
                    id: JobId(i),
                    window: Window::new(0, 256),
                });
            }
            eng.flush_batch(FlushMode::Immediate).unwrap();
        }
        let frames = relay.poll();
        assert!(!frames.is_empty());
        for f in &frames {
            replica.apply(f).unwrap();
        }
        assert_eq!(replica.active_count(), 16);
        assert_eq!(
            replica.state_digest(),
            Some(engine.lock().unwrap().state_digest())
        );
    }

    #[test]
    fn traced_flush_stamps_the_events_frame() {
        let engine = shared_engine();
        let mut relay = JournalRelay::new(Arc::clone(&engine), 1).unwrap();
        let tc = realloc_telemetry::TraceCtx::mint(42, 7);
        {
            let mut eng = engine.lock().unwrap();
            eng.submit(Request::Insert {
                id: JobId(1),
                window: Window::new(0, 64),
            });
            eng.flush_batch_traced(FlushMode::Immediate, Some(tc))
                .unwrap();
        }
        let frames = relay.poll();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].trace, Some(tc));
        // The annotation stays out of band: stripping the comment line
        // yields the untraced frame text byte for byte.
        let mut plain = frames[0].clone();
        plain.trace = None;
        let annotated = frames[0].to_text();
        assert_eq!(
            annotated,
            format!("{}# trace {} {}\n", plain.to_text(), tc.id, tc.origin_nanos)
        );
    }

    #[test]
    fn bad_term_and_unjournaled_engines_are_rejected() {
        assert!(matches!(
            JournalRelay::new(shared_engine(), 0),
            Err(ClusterError::BadTerm)
        ));
        let unjournaled = Arc::new(Mutex::new(Engine::new(EngineConfig {
            shards: 2,
            journal: false,
            ..EngineConfig::default()
        })));
        assert!(matches!(
            JournalRelay::new(unjournaled, 1),
            Err(ClusterError::JournalDisabled)
        ));
    }

    #[test]
    fn bootstrap_refuses_queued_requests() {
        let engine = shared_engine();
        let mut relay = JournalRelay::new(Arc::clone(&engine), 1).unwrap();
        engine.lock().unwrap().submit(Request::Insert {
            id: JobId(1),
            window: Window::new(0, 64),
        });
        assert!(matches!(
            relay.bootstrap(),
            Err(ClusterError::QueuedRequests)
        ));
        // The serving tier flushes; bootstrap proceeds and the flushed
        // batch ships as an owed frame ahead of the snapshot.
        engine
            .lock()
            .unwrap()
            .flush_batch(FlushMode::Immediate)
            .unwrap();
        let (owed, boot) = relay.bootstrap().unwrap();
        assert_eq!(owed.len(), 1);
        let mut replica = crate::Replica::new();
        replica.apply(&boot).unwrap();
        assert_eq!(replica.active_count(), 1);
        assert_eq!(
            replica.state_digest(),
            Some(engine.lock().unwrap().state_digest())
        );
    }

    #[test]
    fn truncated_cursor_recovers_via_checkpoint_plus_tail() {
        let engine = Arc::new(Mutex::new(Engine::new(EngineConfig {
            shards: 2,
            journal: true,
            retained_segments: 1,
            ..EngineConfig::default()
        })));
        let mut relay = JournalRelay::new(Arc::clone(&engine), 1).unwrap();
        let mut replica = crate::Replica::new();
        let (owed, boot) = relay.bootstrap().unwrap();
        assert!(owed.is_empty());
        replica.apply(&boot).unwrap();

        // Unshipped history, a checkpoint cut that truncates it out from
        // under the relay cursor, then MORE flushes after the cut — the
        // post-checkpoint tail the old recovery silently dropped.
        {
            let mut eng = engine.lock().unwrap();
            for i in 0..4u64 {
                eng.submit(Request::Insert {
                    id: JobId(i),
                    window: Window::new(0, 128),
                });
                eng.flush_batch(FlushMode::Immediate).unwrap();
            }
            eng.checkpoint();
            eng.checkpoint(); // second cut drops the pre-checkpoint segment
            for i in 4..7u64 {
                eng.submit(Request::Insert {
                    id: JobId(i),
                    window: Window::new(0, 128),
                });
                eng.flush_batch(FlushMode::Immediate).unwrap();
            }
            assert!(
                eng.journal().unwrap().dropped_events() > 0,
                "test must actually truncate the relay's cursor"
            );
        }

        let frames = relay.poll();
        assert!(
            matches!(frames[0].payload, Payload::Snapshot { .. }),
            "recovery leads with a re-bootstrap snapshot"
        );
        assert!(
            frames.len() > 1,
            "post-checkpoint tail must ship, not vanish: {frames:?}"
        );
        // The snapshot's stamp matches the state it carries: applying
        // snapshot + tail converges the replica on the live engine.
        for f in &frames {
            replica.apply(f).unwrap();
        }
        let eng = engine.lock().unwrap();
        assert_eq!(replica.active_count(), 7);
        assert_eq!(replica.state_digest(), Some(eng.state_digest()));
        assert_eq!(
            replica.events_applied(),
            eng.journal().unwrap().total_events()
        );
    }

    #[test]
    fn frames_since_serves_retained_history() {
        let engine = shared_engine();
        let mut relay = JournalRelay::new(Arc::clone(&engine), 1).unwrap();
        for i in 0..3u64 {
            let mut eng = engine.lock().unwrap();
            eng.submit(Request::Insert {
                id: JobId(i),
                window: Window::new(0, 64),
            });
            eng.flush_batch(FlushMode::Immediate).unwrap();
            drop(eng);
            relay.poll();
        }
        assert_eq!(relay.next_seq(), 4);
        let tail = relay.frames_since(1).unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 2);
        assert!(relay.frames_since(9).is_none());
        assert_eq!(relay.frames_since(3).unwrap().len(), 0);
    }
}
