//! Std-only TCP transport: length-prefixed replication frames over
//! [`std::net::TcpStream`], with a threaded accept loop on the replica
//! side and a synchronous per-frame acknowledgement protocol.
//!
//! # Wire protocol
//!
//! Each direction carries length-prefixed byte frames
//! ([`realloc_core::textio::write_frame`]: a `u32` big-endian byte
//! count, then that many bytes).
//!
//! * primary → replica: one [`Frame`] text document per wire frame.
//! * replica → primary: one ack line per received frame — `ok <seq>`
//!   when the frame was applied, `err <description>` when it was
//!   rejected (fencing, sequence gap, corruption, divergence).
//!
//! The ack is what makes [`PrimaryLink::send`]'s `Ok` mean
//! *acknowledged*: the replica has durably applied the frame before the
//! primary moves on, so "no acknowledged event is ever lost" holds
//! across a primary crash by construction. (Throughput-minded embedders
//! batch many events per frame — one round-trip per flush, not per
//! request.)
//!
//! # Threading
//!
//! [`ReplicaServer::bind`] spawns one accept-loop thread; each accepted
//! connection gets its own handler thread that reads frames, applies
//! them to the shared [`Replica`] under its lock, and writes acks. The
//! server and any number of local readers share the replica via
//! [`ReplicaServer::replica`] — that is the read-scaling surface.
//! Handler threads exit when their peer disconnects; the accept loop
//! exits on [`ReplicaServer::shutdown`] (also triggered by `Drop`).

use crate::frame::{Frame, MAX_FRAME_BYTES};
use crate::replica::Replica;
use crate::tele::LinkTele;
use crate::transport::{FrameSink, TransportError};
use realloc_core::textio::{read_frame, write_frame};
use realloc_telemetry::Telemetry;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Cap on one ack frame (a short status line).
const MAX_ACK_BYTES: u32 = 4096;

/// Replica-side server: owns the accept loop and the shared replica.
#[derive(Debug)]
pub struct ReplicaServer {
    replica: Arc<Mutex<Replica>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ReplicaServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `replica` on a background accept loop.
    pub fn bind(addr: impl ToSocketAddrs, replica: Replica) -> std::io::Result<ReplicaServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let replica = Arc::new(Mutex::new(replica));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_replica = Arc::clone(&replica);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("replica-accept-{addr}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_replica = Arc::clone(&accept_replica);
                    // Handler threads are detached: they exit when the
                    // peer disconnects (read_frame returns None/Err).
                    let _ = std::thread::Builder::new()
                        .name("replica-conn".to_string())
                        .spawn(move || serve_connection(stream, conn_replica));
                }
            })?;
        Ok(ReplicaServer {
            replica,
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (connect [`PrimaryLink`]s here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared replica — lock it for read queries (`window_of`,
    /// `metrics`, `validate`, `state_digest`) or promotion. Locks are
    /// held per frame by the connection handlers, so readers interleave
    /// with replication at batch granularity.
    pub fn replica(&self) -> Arc<Mutex<Replica>> {
        Arc::clone(&self.replica)
    }

    /// Stops the accept loop and joins it. In-flight connection handlers
    /// finish their current peer's stream and exit on disconnect.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection: read frame → parse → apply → ack, until disconnect.
fn serve_connection(stream: TcpStream, replica: Arc<Mutex<Replica>>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        let payload = match read_frame(&mut reader, MAX_FRAME_BYTES) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // peer gone
        };
        let ack = match std::str::from_utf8(&payload)
            .map_err(|e| format!("frame is not UTF-8: {e}"))
            .and_then(|text| Frame::parse(text).map_err(|e| e.to_string()))
            .and_then(|frame| {
                let seq = frame.seq;
                replica
                    .lock()
                    .expect("replica mutex poisoned")
                    .apply(&frame)
                    .map(|()| seq)
                    .map_err(|e| e.to_string())
            }) {
            Ok(seq) => format!("ok {seq}"),
            Err(e) => format!("err {e}"),
        };
        if write_frame(&mut writer, ack.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// Primary-side link to one remote replica: sends a frame, waits for the
/// ack. Dropping the link closes the connection (the replica's handler
/// thread exits).
#[derive(Debug)]
pub struct PrimaryLink {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// The replica's address, as connected (the telemetry label).
    peer: SocketAddr,
    /// Per-link instruments ([`PrimaryLink::attach_telemetry`]), labeled
    /// `replica="<peer>"`.
    tele: Option<Box<LinkTele>>,
}

impl PrimaryLink {
    /// Connects to a [`ReplicaServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<PrimaryLink> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let peer = stream.peer_addr()?;
        let write_half = stream.try_clone()?;
        Ok(PrimaryLink {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            peer,
            tele: None,
        })
    }

    /// The replica address this link ships to.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Attaches per-link instruments, labeled with this link's replica
    /// address: bytes shipped, ack round-trip latency, the highest
    /// acknowledged sequence, and send errors. A registry watching a
    /// whole fan-out distinguishes links by the `replica` label — the
    /// per-replica lag a poller reads is the primary's `cluster_next_seq
    /// − 1` minus this link's `cluster_link_acked_seq` (or the replica's
    /// own `cluster_replica_last_seq`). A disabled handle detaches.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele = LinkTele::build(telemetry, &self.peer.to_string());
    }
}

impl FrameSink for PrimaryLink {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        let text = frame.to_text();
        let t0 = self.tele.as_ref().map(|t| t.t.now_nanos());
        let result = send_text(&mut self.reader, &mut self.writer, &text);
        if let Some(tele) = &self.tele {
            match &result {
                Ok(()) => {
                    tele.bytes_shipped.add(text.len() as u64);
                    tele.ack_rtt_nanos.record(
                        tele.t
                            .now_nanos()
                            .saturating_sub(t0.expect("stamped above")),
                    );
                    tele.acked_seq.set(frame.seq);
                }
                Err(_) => tele.send_errors.inc(),
            }
        }
        result
    }
}

/// The un-instrumented send/ack round trip ([`PrimaryLink::send`] wraps
/// this with the per-link telemetry).
fn send_text(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    text: &str,
) -> Result<(), TransportError> {
    write_frame(writer, text.as_bytes())?;
    writer.flush()?;
    let Some(ack) = read_frame(reader, MAX_ACK_BYTES)? else {
        return Err(TransportError::Closed);
    };
    let ack = String::from_utf8(ack)
        .map_err(|e| TransportError::Rejected(format!("ack is not UTF-8: {e}")))?;
    match ack.split_once(' ') {
        Some(("ok", _)) => Ok(()),
        Some(("err", detail)) => Err(TransportError::Rejected(detail.to_string())),
        _ => Err(TransportError::Rejected(format!("malformed ack '{ack}'"))),
    }
}
