//! Std-only TCP transport: length-prefixed replication frames over
//! [`std::net::TcpStream`], with a threaded accept loop on the replica
//! side and a synchronous per-frame acknowledgement protocol.
//!
//! # Wire protocol
//!
//! Each direction carries length-prefixed byte frames
//! ([`realloc_core::textio::write_frame`]: a `u32` big-endian byte
//! count, then that many bytes).
//!
//! * primary → replica: one [`Frame`] text document per wire frame.
//! * replica → primary: one ack line per received frame — `ok <seq>`
//!   when the frame was applied, `err <description>` when it was
//!   rejected (fencing, sequence gap, corruption, divergence).
//!
//! The ack is what makes [`PrimaryLink::send`]'s `Ok` mean
//! *acknowledged*: the replica has durably applied the frame before the
//! primary moves on, so "no acknowledged event is ever lost" holds
//! across a primary crash by construction. (Throughput-minded embedders
//! batch many events per frame — one round-trip per flush, not per
//! request.)
//!
//! # Timeouts and reconnection
//!
//! Every link operation is bounded by a [`LinkConfig`]: connects use
//! [`TcpStream::connect_timeout`], reads and writes carry socket
//! timeouts, so a hung replica fails a send instead of wedging the
//! primary forever. After a failed send the connection is dropped; the
//! **next** send redials with bounded exponential backoff
//! ([`LinkConfig::backoff_base`] doubling up to
//! [`LinkConfig::backoff_cap`], at most
//! [`LinkConfig::reconnect_attempts`] dials). The failed frame is *not*
//! resent automatically — the replica acks per sequence number, so the
//! embedder decides between retrying the frame (idempotent: a duplicate
//! seq is rejected as a gap in the other direction) and falling back to
//! [`crate::Primary::frames_since`] / [`crate::Primary::bootstrap`],
//! exactly as with any other rejected send.
//!
//! # Threading
//!
//! [`ReplicaServer::bind`] spawns one accept-loop thread; each accepted
//! connection gets its own handler thread that reads frames, applies
//! them to the shared [`Replica`] under its lock, and writes acks. The
//! server and any number of local readers share the replica via
//! [`ReplicaServer::replica`] — that is the read-scaling surface.
//! Handler threads exit when their peer disconnects; the accept loop
//! exits on [`ReplicaServer::shutdown`] (also triggered by `Drop`).
//!
//! A handler that finds the replica's mutex **poisoned** (another
//! handler panicked mid-apply) does not propagate the panic: it drops
//! its connection — un-acked frames stay un-acked, so no data is lost —
//! and the event is counted in [`ReplicaServer::handlers_poisoned`]
//! (and the `replica_handler_poisoned_total` counter when telemetry is
//! attached). The primary sees a closed link and re-establishes, while
//! local readers holding [`ReplicaServer::replica`] decide for
//! themselves how to treat the poisoned state.

use crate::frame::{Frame, MAX_FRAME_BYTES};
use crate::replica::Replica;
use crate::tele::LinkTele;
use crate::transport::{FrameSink, TransportError};
use realloc_core::textio::{read_frame, write_frame};
use realloc_telemetry::{Counter, Telemetry};
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on one ack frame (a short status line).
const MAX_ACK_BYTES: u32 = 4096;

/// Socket and retry policy for a [`PrimaryLink`]; the defaults suit a
/// LAN replica (generous timeouts, sub-second backoff).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkConfig {
    /// Bound on establishing a connection.
    pub connect_timeout: Duration,
    /// Socket read timeout — bounds the wait for each ack.
    pub read_timeout: Duration,
    /// Socket write timeout — bounds each frame write.
    pub write_timeout: Duration,
    /// First reconnect delay; doubles per failed dial.
    pub backoff_base: Duration,
    /// Ceiling on the per-dial backoff delay.
    pub backoff_cap: Duration,
    /// Dial attempts per reconnect (a send that needs a connection
    /// fails after this many dials; the next send starts over).
    pub reconnect_attempts: u32,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            reconnect_attempts: 5,
        }
    }
}

impl LinkConfig {
    /// Backoff before dial `attempt` (0-based): `base << attempt`,
    /// saturating at the cap. Attempt 0 dials immediately.
    fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let exp = self
            .backoff_base
            .saturating_mul(1u32 << attempt.min(20).saturating_sub(1));
        exp.min(self.backoff_cap)
    }
}

/// Replica-side server: owns the accept loop and the shared replica.
#[derive(Debug)]
pub struct ReplicaServer {
    replica: Arc<Mutex<Replica>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Connections dropped over a poisoned replica lock, plus the
    /// telemetry counter handlers mirror it into.
    poisoned: Arc<PoisonCount>,
}

/// Shared poison bookkeeping between the server handle and its handler
/// threads.
#[derive(Debug, Default)]
struct PoisonCount {
    total: AtomicU64,
    counter: Mutex<Option<Counter>>,
}

impl PoisonCount {
    fn record(&self) {
        self.total.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self.counter.lock().ok().and_then(|g| g.clone()) {
            c.inc();
        }
    }
}

impl ReplicaServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `replica` on a background accept loop.
    pub fn bind(addr: impl ToSocketAddrs, replica: Replica) -> std::io::Result<ReplicaServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let replica = Arc::new(Mutex::new(replica));
        let stop = Arc::new(AtomicBool::new(false));
        let poisoned = Arc::new(PoisonCount::default());
        let accept_replica = Arc::clone(&replica);
        let accept_stop = Arc::clone(&stop);
        let accept_poisoned = Arc::clone(&poisoned);
        let accept_thread = std::thread::Builder::new()
            .name(format!("replica-accept-{addr}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_replica = Arc::clone(&accept_replica);
                    let conn_poisoned = Arc::clone(&accept_poisoned);
                    // Handler threads are detached: they exit when the
                    // peer disconnects (read_frame returns None/Err).
                    let _ = std::thread::Builder::new()
                        .name("replica-conn".to_string())
                        .spawn(move || serve_connection(stream, conn_replica, conn_poisoned));
                }
            })?;
        Ok(ReplicaServer {
            replica,
            addr,
            stop,
            accept_thread: Some(accept_thread),
            poisoned,
        })
    }

    /// The bound address (connect [`PrimaryLink`]s here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared replica — lock it for read queries (`window_of`,
    /// `metrics`, `validate`, `state_digest`) or promotion. Locks are
    /// held per frame by the connection handlers, so readers interleave
    /// with replication at batch granularity.
    pub fn replica(&self) -> Arc<Mutex<Replica>> {
        Arc::clone(&self.replica)
    }

    /// Connections dropped because the replica's lock was poisoned (a
    /// handler panicked mid-apply). Nonzero means the replica's state
    /// is suspect and a re-bootstrap or failover is in order.
    pub fn handlers_poisoned(&self) -> u64 {
        self.poisoned.total.load(Ordering::Relaxed)
    }

    /// Mirrors poison drops into a `replica_handler_poisoned_total`
    /// counter. A disabled handle detaches.
    pub fn attach_telemetry(&self, telemetry: &Telemetry) {
        let counter = telemetry
            .is_enabled()
            .then(|| telemetry.counter("replica_handler_poisoned_total"));
        if let Ok(mut slot) = self.poisoned.counter.lock() {
            *slot = counter;
        }
    }

    /// Stops the accept loop and joins it. In-flight connection handlers
    /// finish their current peer's stream and exit on disconnect.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection: read frame → parse → apply → ack, until disconnect.
/// A poisoned replica lock drops the connection (counted) instead of
/// propagating the panic; see the module docs.
fn serve_connection(stream: TcpStream, replica: Arc<Mutex<Replica>>, poisoned: Arc<PoisonCount>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        let payload = match read_frame(&mut reader, MAX_FRAME_BYTES) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // peer gone
        };
        let parsed = std::str::from_utf8(&payload)
            .map_err(|e| format!("frame is not UTF-8: {e}"))
            .and_then(|text| Frame::parse(text).map_err(|e| e.to_string()));
        let ack = match parsed {
            Ok(frame) => {
                let seq = frame.seq;
                let Ok(mut guard) = replica.lock() else {
                    // Another handler panicked while holding the lock:
                    // the replica's state is suspect. Degrade — drop
                    // this connection without acking (the primary
                    // re-sends or re-bootstraps elsewhere) rather than
                    // panic the whole server.
                    poisoned.record();
                    return;
                };
                match guard.apply(&frame) {
                    Ok(()) => format!("ok {seq}"),
                    Err(e) => format!("err {e}"),
                }
            }
            Err(e) => format!("err {e}"),
        };
        if write_frame(&mut writer, ack.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// Primary-side link to one remote replica: sends a frame, waits for the
/// ack. Socket operations are bounded by the link's [`LinkConfig`]; a
/// failed send drops the connection and the next send redials with
/// exponential backoff (see the module docs — failed frames are not
/// resent automatically). Dropping the link closes the connection (the
/// replica's handler thread exits).
#[derive(Debug)]
pub struct PrimaryLink {
    /// The live connection, absent after a send failure until the next
    /// send redials.
    conn: Option<Conn>,
    /// The replica's resolved address (redial target, telemetry label).
    peer: SocketAddr,
    config: LinkConfig,
    /// Per-link instruments ([`PrimaryLink::attach_telemetry`]), labeled
    /// `replica="<peer>"`.
    tele: Option<Box<LinkTele>>,
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl PrimaryLink {
    /// Connects to a [`ReplicaServer`] under [`LinkConfig::default`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<PrimaryLink> {
        Self::connect_with(addr, LinkConfig::default())
    }

    /// Connects with an explicit timeout/backoff policy. The initial
    /// dial gets the same bounded-backoff retry loop as reconnects.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: LinkConfig,
    ) -> std::io::Result<PrimaryLink> {
        let peer = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let mut link = PrimaryLink {
            conn: None,
            peer,
            config,
            tele: None,
        };
        link.redial()?;
        Ok(link)
    }

    /// The replica address this link ships to.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Whether the link currently holds a live connection (false after
    /// a failed send, until the next send redials).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// This link's timeout/backoff policy.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Attaches per-link instruments, labeled with this link's replica
    /// address: bytes shipped, ack round-trip latency, the highest
    /// acknowledged sequence, send errors, and reconnect dials. A
    /// registry watching a whole fan-out distinguishes links by the
    /// `replica` label — the per-replica lag a poller reads is the
    /// primary's `cluster_next_seq − 1` minus this link's
    /// `cluster_link_acked_seq` (or the replica's own
    /// `cluster_replica_last_seq`). A disabled handle detaches.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele = LinkTele::build(telemetry, &self.peer.to_string());
    }

    /// One bounded dial (connect + socket timeouts applied).
    fn dial(&self) -> std::io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&self.peer, self.config.connect_timeout)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        let write_half = stream.try_clone()?;
        Ok(Conn {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Establishes a connection with bounded exponential backoff,
    /// counting each successful re-dial.
    fn redial(&mut self) -> std::io::Result<()> {
        let mut last = None;
        for attempt in 0..self.config.reconnect_attempts.max(1) {
            let delay = self.config.backoff(attempt);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            match self.dial() {
                Ok(conn) => {
                    self.conn = Some(conn);
                    if let Some(tele) = &self.tele {
                        tele.reconnects.inc();
                    }
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::TimedOut, "no dial attempts configured")
        }))
    }
}

impl FrameSink for PrimaryLink {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        let text = frame.to_text();
        let t0 = self.tele.as_ref().map(|t| t.t.now_nanos());
        if self.conn.is_none() {
            self.redial().map_err(|e| {
                if let Some(tele) = &self.tele {
                    tele.send_errors.inc();
                }
                TransportError::Io(e)
            })?;
        }
        let conn = self.conn.as_mut().expect("redialed above");
        let result = send_text(&mut conn.reader, &mut conn.writer, &text);
        if let Some(tele) = &self.tele {
            match &result {
                Ok(()) => {
                    tele.bytes_shipped.add(text.len() as u64);
                    tele.ack_rtt_nanos.record(
                        tele.t
                            .now_nanos()
                            .saturating_sub(t0.expect("stamped above")),
                    );
                    tele.acked_seq.set(frame.seq);
                }
                Err(_) => tele.send_errors.inc(),
            }
        }
        if matches!(
            result,
            Err(TransportError::Io(_)) | Err(TransportError::Closed)
        ) {
            // The stream is in an unknown state (the frame may or may
            // not have been applied): drop it. The next send redials.
            self.conn = None;
        }
        result
    }
}

/// The un-instrumented send/ack round trip ([`PrimaryLink::send`] wraps
/// this with the per-link telemetry).
fn send_text(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    text: &str,
) -> Result<(), TransportError> {
    write_frame(writer, text.as_bytes())?;
    writer.flush()?;
    let Some(ack) = read_frame(reader, MAX_ACK_BYTES)? else {
        return Err(TransportError::Closed);
    };
    let ack = String::from_utf8(ack)
        .map_err(|e| TransportError::Rejected(format!("ack is not UTF-8: {e}")))?;
    match ack.split_once(' ') {
        Some(("ok", _)) => Ok(()),
        Some(("err", detail)) => Err(TransportError::Rejected(detail.to_string())),
        _ => Err(TransportError::Rejected(format!("malformed ack '{ack}'"))),
    }
}
