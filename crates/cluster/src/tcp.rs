//! Std-only TCP transport: length-prefixed replication frames over
//! [`std::net::TcpStream`], with a threaded accept loop on the replica
//! side and a **pipelined, cumulatively acknowledged** stream on the
//! primary side.
//!
//! # Wire protocol
//!
//! Each direction carries length-prefixed byte frames
//! ([`realloc_core::textio::write_frame`]: a `u32` big-endian byte
//! count, then that many bytes).
//!
//! * primary → replica: one [`Frame`] text document per wire frame.
//! * replica → primary: cumulative ack lines — `ok <seq>` acknowledges
//!   **everything up to and including** `seq`, and is written at most
//!   once per applied batch-of-frames rather than per frame; a
//!   rejection is reported as `err <seq> <description>` (fencing,
//!   sequence gap, corruption, divergence — `err ? <description>` when
//!   the frame did not even parse), after first acking the applied
//!   prefix.
//!
//! # Pipelining and the commit point
//!
//! [`PrimaryLink::send`] no longer waits for an ack: it keeps up to
//! [`LinkConfig::window`] frames in flight and returns as soon as the
//! frame is written (retiring any acks already on the wire without
//! blocking). `Ok` from `send` therefore means *accepted for
//! delivery* — the durability commit point is [`PrimaryLink::drain`]
//! (every in-flight frame acknowledged) or, for a fan-out, the quorum
//! barrier in [`crate::ReplicationGroup::commit`]. The replica still
//! acks only *after* applying under its lock, so the cumulative ack is
//! exact: "no acknowledged event is ever lost" holds across any cut of
//! the link, with at most a window of *unacknowledged* frames needing
//! re-ship or re-bootstrap.
//!
//! Backpressure is explicit: when the window is exhausted, `send`
//! blocks until an ack frees a slot (counted in
//! `cluster_link_backpressure_stalls_total`), while
//! [`PrimaryLink::try_send`] returns [`TransportError::WindowFull`]
//! instead of blocking. A bootstrap [`Payload::Snapshot`] re-anchors
//! the sequence numbering, so it acts as a barrier: the link drains
//! before shipping it and the cumulative-ack state restarts behind it.
//!
//! # Timeouts and reconnection
//!
//! Every link operation is bounded by a [`LinkConfig`]: connects use
//! [`TcpStream::connect_timeout`], writes carry socket timeouts, and
//! every wait for acks — a full [`PrimaryLink::drain`] as well as a
//! window-full stall inside `send` — is bounded by
//! [`LinkConfig::drain_timeout`] **in total**, not per ack, so a
//! stalled replica fails the drain with a typed
//! [`TransportError::DrainTimeout`] (counted in
//! `cluster_link_drain_timeouts_total`) instead of wedging the primary
//! one read-timeout at a time. After any failed operation the
//! connection is dropped — a pipelined stream is in an unknown state
//! once anything goes wrong — and the **next** send redials with
//! bounded exponential backoff ([`LinkConfig::backoff_base`] doubling
//! up to [`LinkConfig::backoff_cap`], at most
//! [`LinkConfig::reconnect_attempts`] dials). In-flight frames are
//! *not* resent automatically: the link remembers the last cumulative
//! ack ([`PrimaryLink::acked_seq`]), so the embedder (or
//! [`crate::ReplicationGroup::repair`]) re-ships from
//! [`crate::Primary::frames_since`] or falls back to
//! [`crate::Primary::bootstrap`].
//!
//! A peer that violates the ack protocol — a regressing cumulative
//! ack, an ack above the shipped window, a garbage ack line — surfaces
//! as a located [`TransportError::Protocol`] and drops the connection
//! **without poisoning the window state**: `acked_seq` keeps the last
//! honest value.
//!
//! # Threading
//!
//! [`ReplicaServer::bind`] spawns one accept-loop thread; each accepted
//! connection gets its own handler thread that reads frames, applies
//! them to the shared [`Replica`] under its lock, and writes one
//! cumulative ack per batch of frames found on the wire. The server and
//! any number of local readers share the replica via
//! [`ReplicaServer::replica`] — that is the read-scaling surface.
//! Handler threads exit when their peer disconnects; the accept loop
//! exits on [`ReplicaServer::shutdown`] (also triggered by `Drop`).
//!
//! A handler that finds the replica's mutex **poisoned** (another
//! handler panicked mid-apply) does not propagate the panic: it drops
//! its connection — un-acked frames stay un-acked, so no data is lost —
//! and the event is counted in [`ReplicaServer::handlers_poisoned`]
//! (and the `replica_handler_poisoned_total` counter when telemetry is
//! attached). The primary sees a closed link and re-establishes, while
//! local readers holding [`ReplicaServer::replica`] decide for
//! themselves how to treat the poisoned state.

use crate::frame::{Frame, Payload, MAX_FRAME_BYTES};
use crate::replica::Replica;
use crate::tele::LinkTele;
use crate::transport::{FrameSink, TransportError};
use realloc_core::textio::{read_frame, write_frame};
use realloc_telemetry::{Counter, Severity, Telemetry};
use std::collections::VecDeque;
use std::io::{BufRead as _, BufReader, BufWriter, ErrorKind, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cap on one ack frame (a short status line).
const MAX_ACK_BYTES: u32 = 4096;

/// Socket, window, and retry policy for a [`PrimaryLink`]; the defaults
/// suit a LAN replica (generous timeouts, a 32-frame pipeline,
/// sub-second backoff).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkConfig {
    /// Bound on establishing a connection.
    pub connect_timeout: Duration,
    /// Socket read timeout — bounds each *individual* wait inside an
    /// ack read; the total wait for a drain or window stall is bounded
    /// by [`LinkConfig::drain_timeout`].
    pub read_timeout: Duration,
    /// Socket write timeout — bounds each frame write.
    pub write_timeout: Duration,
    /// First reconnect delay; doubles per failed dial.
    pub backoff_base: Duration,
    /// Ceiling on the per-dial backoff delay.
    pub backoff_cap: Duration,
    /// Dial attempts per reconnect (a send that needs a connection
    /// fails after this many dials; the next send starts over).
    pub reconnect_attempts: u32,
    /// Maximum unacknowledged frames in flight before `send` blocks
    /// (or [`PrimaryLink::try_send`] returns
    /// [`TransportError::WindowFull`]). Treated as at least 1.
    pub window: usize,
    /// Total bound on waiting for the pipeline to drain — across a
    /// whole [`PrimaryLink::drain`] or a window-full stall, not per
    /// ack. Expiry surfaces as [`TransportError::DrainTimeout`].
    pub drain_timeout: Duration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            reconnect_attempts: 5,
            window: 32,
            drain_timeout: Duration::from_secs(10),
        }
    }
}

impl LinkConfig {
    /// Backoff before dial `attempt` (0-based): `base << attempt`,
    /// saturating at the cap. Attempt 0 dials immediately.
    fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let exp = self
            .backoff_base
            .saturating_mul(1u32 << attempt.min(20).saturating_sub(1));
        exp.min(self.backoff_cap)
    }
}

/// Replica-side server: owns the accept loop and the shared replica.
#[derive(Debug)]
pub struct ReplicaServer {
    replica: Arc<Mutex<Replica>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Connections dropped over a poisoned replica lock, plus the
    /// telemetry counter handlers mirror it into.
    poisoned: Arc<PoisonCount>,
}

/// Shared poison bookkeeping between the server handle and its handler
/// threads.
#[derive(Debug, Default)]
struct PoisonCount {
    total: AtomicU64,
    counter: Mutex<Option<Counter>>,
}

impl PoisonCount {
    fn record(&self) {
        self.total.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self.counter.lock().ok().and_then(|g| g.clone()) {
            c.inc();
        }
    }
}

impl ReplicaServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `replica` on a background accept loop.
    pub fn bind(addr: impl ToSocketAddrs, replica: Replica) -> std::io::Result<ReplicaServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let replica = Arc::new(Mutex::new(replica));
        let stop = Arc::new(AtomicBool::new(false));
        let poisoned = Arc::new(PoisonCount::default());
        let accept_replica = Arc::clone(&replica);
        let accept_stop = Arc::clone(&stop);
        let accept_poisoned = Arc::clone(&poisoned);
        let accept_thread = std::thread::Builder::new()
            .name(format!("replica-accept-{addr}"))
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Acks are tiny and the primary may be idle waiting
                    // for them: Nagle + delayed-ACK would stall every
                    // pipelined batch by an RTT timer.
                    stream.set_nodelay(true).ok();
                    let conn_replica = Arc::clone(&accept_replica);
                    let conn_poisoned = Arc::clone(&accept_poisoned);
                    // Handler threads are detached: they exit when the
                    // peer disconnects (read_frame returns None/Err).
                    let _ = std::thread::Builder::new()
                        .name("replica-conn".to_string())
                        .spawn(move || serve_connection(stream, conn_replica, conn_poisoned));
                }
            })?;
        Ok(ReplicaServer {
            replica,
            addr,
            stop,
            accept_thread: Some(accept_thread),
            poisoned,
        })
    }

    /// The bound address (connect [`PrimaryLink`]s here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared replica — lock it for read queries (`window_of`,
    /// `metrics`, `validate`, `state_digest`) or promotion. Locks are
    /// held per frame by the connection handlers, so readers interleave
    /// with replication at batch granularity.
    pub fn replica(&self) -> Arc<Mutex<Replica>> {
        Arc::clone(&self.replica)
    }

    /// Connections dropped because the replica's lock was poisoned (a
    /// handler panicked mid-apply). Nonzero means the replica's state
    /// is suspect and a re-bootstrap or failover is in order.
    pub fn handlers_poisoned(&self) -> u64 {
        self.poisoned.total.load(Ordering::Relaxed)
    }

    /// Mirrors poison drops into a `replica_handler_poisoned_total`
    /// counter. A disabled handle detaches.
    pub fn attach_telemetry(&self, telemetry: &Telemetry) {
        let counter = telemetry
            .is_enabled()
            .then(|| telemetry.counter("replica_handler_poisoned_total"));
        if let Ok(mut slot) = self.poisoned.counter.lock() {
            *slot = counter;
        }
    }

    /// Stops the accept loop and joins it. In-flight connection handlers
    /// finish their current peer's stream and exit on disconnect.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Outcome of handling one inbound frame on the replica side.
enum Handled {
    /// Applied; carry the seq into the batch's cumulative ack.
    Applied(u64),
    /// The replica lock was poisoned: drop the connection (counted).
    Poisoned,
    /// Parse failure or replica rejection: the ready-to-send `err` line.
    Refused(String),
}

/// Parses and applies one frame payload under the replica lock.
fn handle_frame(payload: &[u8], replica: &Arc<Mutex<Replica>>) -> Handled {
    let parsed = std::str::from_utf8(payload)
        .map_err(|e| format!("frame is not UTF-8: {e}"))
        .and_then(|text| Frame::parse(text).map_err(|e| e.to_string()));
    match parsed {
        Ok(frame) => {
            let Ok(mut guard) = replica.lock() else {
                // Another handler panicked while holding the lock: the
                // replica's state is suspect. Degrade — drop this
                // connection without acking (the primary re-ships or
                // re-bootstraps elsewhere) rather than panic the whole
                // server.
                return Handled::Poisoned;
            };
            match guard.apply(&frame) {
                Ok(()) => Handled::Applied(frame.seq),
                Err(e) => Handled::Refused(format!("err {} {e}", frame.seq)),
            }
        }
        Err(e) => Handled::Refused(format!("err ? {e}")),
    }
}

/// Writes the batch's pending cumulative ack (if any) and flushes.
fn flush_ack(writer: &mut BufWriter<TcpStream>, hi: Option<u64>) -> std::io::Result<()> {
    if let Some(seq) = hi {
        write_frame(writer, format!("ok {seq}").as_bytes())?;
    }
    writer.flush()
}

/// What the handler found when looking for more inbound work without
/// blocking.
enum Pending {
    /// A complete frame was already on the wire.
    Frame(Vec<u8>),
    /// Nothing complete yet — end the batch, ack, and block again.
    NotYet,
    /// The peer is gone or the socket failed.
    Gone,
}

/// Consumes the next frame **only if it is already fully buffered** (or
/// arrives on a single non-blocking refill); never blocks and never
/// leaves the stream mid-frame. Over-cap lengths are left unconsumed —
/// the caller's next blocking read surfaces the framing error after the
/// applied prefix has been acked.
fn next_pending_frame(reader: &mut BufReader<TcpStream>) -> Pending {
    loop {
        let buf = reader.buffer();
        if buf.len() >= 4 {
            let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
            if len > MAX_FRAME_BYTES || (buf.len() - 4) < len as usize {
                return Pending::NotYet;
            }
            // Fully buffered: read_frame cannot touch the socket.
            return match read_frame(reader, MAX_FRAME_BYTES) {
                Ok(Some(p)) => Pending::Frame(p),
                Ok(None) | Err(_) => Pending::Gone,
            };
        }
        if !buf.is_empty() {
            return Pending::NotYet; // partial length prefix
        }
        if reader.get_ref().set_nonblocking(true).is_err() {
            return Pending::Gone;
        }
        let refill = reader.fill_buf().map(|b| b.len());
        if reader.get_ref().set_nonblocking(false).is_err() {
            return Pending::Gone;
        }
        match refill {
            Ok(0) => return Pending::Gone,
            Ok(_) => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Pending::NotYet
            }
            Err(_) => return Pending::Gone,
        }
    }
}

/// One connection: block for a frame, then apply every frame already on
/// the wire as one batch, acking the applied prefix with a single
/// cumulative `ok <seq>`. Rejections flush the pending ack first, then
/// an `err <seq> <detail>` line — acked always ⊆ applied. A poisoned
/// replica lock drops the connection (counted) instead of propagating
/// the panic; see the module docs.
fn serve_connection(stream: TcpStream, replica: Arc<Mutex<Replica>>, poisoned: Arc<PoisonCount>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        // Block for the first frame of a batch.
        let mut payload = match read_frame(&mut reader, MAX_FRAME_BYTES) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // peer gone or framing broken
        };
        let mut applied_hi: Option<u64> = None;
        loop {
            match handle_frame(&payload, &replica) {
                Handled::Applied(seq) => applied_hi = Some(seq),
                Handled::Poisoned => {
                    poisoned.record();
                    return;
                }
                Handled::Refused(line) => {
                    // Ack the applied prefix before reporting the
                    // rejection so the primary retires exactly what
                    // landed.
                    if flush_ack(&mut writer, applied_hi.take()).is_err() {
                        return;
                    }
                    if write_frame(&mut writer, line.as_bytes()).is_err() || writer.flush().is_err()
                    {
                        return;
                    }
                }
            }
            match next_pending_frame(&mut reader) {
                Pending::Frame(p) => payload = p,
                Pending::NotYet => break,
                Pending::Gone => {
                    let _ = flush_ack(&mut writer, applied_hi.take());
                    return;
                }
            }
        }
        if flush_ack(&mut writer, applied_hi).is_err() {
            return;
        }
    }
}

/// Primary-side link to one remote replica: a pipelined frame stream
/// with up to [`LinkConfig::window`] unacknowledged frames in flight
/// and cumulative acks (see the module docs). `Ok` from [`send`] means
/// *accepted for delivery*; [`drain`] is the per-link commit barrier.
/// Socket operations are bounded by the link's [`LinkConfig`]; any
/// failed operation drops the connection and the next send redials with
/// exponential backoff — in-flight frames are not resent automatically,
/// but [`PrimaryLink::acked_seq`] survives the drop so the embedder
/// knows exactly where to resume. Dropping the link closes the
/// connection (the replica's handler thread exits).
///
/// [`send`]: FrameSink::send
/// [`drain`]: FrameSink::drain
#[derive(Debug)]
pub struct PrimaryLink {
    /// The live connection, absent after a failure until the next send
    /// redials.
    conn: Option<Conn>,
    /// The replica's resolved address (redial target, telemetry label).
    peer: SocketAddr,
    config: LinkConfig,
    /// Highest cumulatively acknowledged sequence. Survives connection
    /// drops (it is the resume point) and is never moved by a
    /// protocol-violating ack; reset by a re-anchoring snapshot send.
    acked: Option<u64>,
    /// Per-link instruments ([`PrimaryLink::attach_telemetry`]), labeled
    /// `replica="<peer>"`.
    tele: Option<Box<LinkTele>>,
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Sequences written on this connection and not yet acknowledged,
    /// oldest first, with their send timestamps (0 without telemetry).
    inflight: VecDeque<(u64, u64)>,
    /// Highest cumulative ack received on this connection — the
    /// regression guard for hostile acks.
    conn_acked: Option<u64>,
    /// Staging buffer owning the ack framing state: every byte the
    /// reader picks up is moved here, and complete length-prefixed ack
    /// frames are carved off the front. A read timeout can therefore
    /// never strand a partial frame — its bytes wait here for the rest.
    ackbuf: Vec<u8>,
}

impl PrimaryLink {
    /// Connects to a [`ReplicaServer`] under [`LinkConfig::default`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<PrimaryLink> {
        Self::connect_with(addr, LinkConfig::default())
    }

    /// Connects with an explicit timeout/window/backoff policy. The
    /// initial dial gets the same bounded-backoff retry loop as
    /// reconnects.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: LinkConfig,
    ) -> std::io::Result<PrimaryLink> {
        let peer = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let mut link = PrimaryLink {
            conn: None,
            peer,
            config,
            acked: None,
            tele: None,
        };
        link.redial()?;
        Ok(link)
    }

    /// The replica address this link ships to.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Whether the link currently holds a live connection (false after
    /// a failure, until the next send redials).
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// This link's timeout/window/backoff policy.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Sends without blocking on a full window: returns
    /// [`TransportError::WindowFull`] when [`LinkConfig::window`]
    /// frames are already unacknowledged (after retiring any acks
    /// waiting on the wire). Otherwise identical to [`FrameSink::send`].
    pub fn try_send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.send_impl(frame, false)
    }

    /// Attaches per-link instruments, labeled with this link's replica
    /// address: bytes shipped, ack round-trip latency, the highest
    /// acknowledged sequence, the in-flight window depth, cumulative
    /// ack batch sizes, backpressure stalls, drain timeouts, send
    /// errors, and reconnect dials. A registry watching a whole fan-out
    /// distinguishes links by the `replica` label — the per-replica lag
    /// a poller reads is the primary's `cluster_next_seq − 1` minus
    /// this link's `cluster_link_acked_seq` (or the replica's own
    /// `cluster_replica_last_seq`). A disabled handle detaches.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele = LinkTele::build(telemetry, &self.peer.to_string());
    }

    /// One bounded dial (connect + socket timeouts applied).
    fn dial(&self) -> std::io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&self.peer, self.config.connect_timeout)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        let write_half = stream.try_clone()?;
        Ok(Conn {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            inflight: VecDeque::new(),
            conn_acked: None,
            ackbuf: Vec::new(),
        })
    }

    /// Establishes a connection with bounded exponential backoff,
    /// counting each successful re-dial.
    fn redial(&mut self) -> std::io::Result<()> {
        let mut last = None;
        for attempt in 0..self.config.reconnect_attempts.max(1) {
            let delay = self.config.backoff(attempt);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            match self.dial() {
                Ok(conn) => {
                    self.conn = Some(conn);
                    if let Some(tele) = &self.tele {
                        tele.reconnects.inc();
                        tele.window_inflight.set(0);
                    }
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::TimedOut, "no dial attempts configured")
        }))
    }

    /// The effective window (config clamped to at least 1).
    fn window(&self) -> usize {
        self.config.window.max(1)
    }

    /// Drops the connection after a failure, counting it. The link's
    /// `acked` state is deliberately left untouched — it is the honest
    /// resume point, whatever the peer just did.
    fn fail(&mut self, e: TransportError) -> TransportError {
        if let Some(tele) = &self.tele {
            tele.send_errors.inc();
            if let TransportError::DrainTimeout { waited, in_flight } = &e {
                tele.drain_timeouts.inc();
                // Operator-grade anomaly: fires the flight-recorder
                // hook so the ring around the stall survives.
                tele.t
                    .incident("drain_timeout", waited.as_nanos() as u64, *in_flight as u64);
            }
            tele.window_inflight.set(0);
        }
        self.conn = None;
        e
    }

    /// Consumes one ack frame **only if it is already fully buffered**;
    /// never blocks and never leaves the stream mid-frame.
    fn take_buffered_ack(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let Some(conn) = self.conn.as_mut() else {
            return Ok(None);
        };
        // Stage everything the reader picked up. The reader's buffer is
        // always left empty, so the next `fill_buf` really reads from
        // the socket instead of handing back a stranded partial frame.
        let buffered = conn.reader.buffer().len();
        if buffered > 0 {
            conn.ackbuf.extend_from_slice(conn.reader.buffer());
            conn.reader.consume(buffered);
        }
        if conn.ackbuf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(conn.ackbuf[..4].try_into().expect("4 bytes"));
        if len > MAX_ACK_BYTES {
            return Err(TransportError::Protocol(format!(
                "ack frame of {len} bytes exceeds the {MAX_ACK_BYTES}-byte cap"
            )));
        }
        let total = 4 + len as usize;
        if conn.ackbuf.len() < total {
            return Ok(None);
        }
        let payload = conn.ackbuf[4..total].to_vec();
        conn.ackbuf.drain(..total);
        Ok(Some(payload))
    }

    /// Validates and applies one cumulative ack line, retiring the
    /// acknowledged prefix of the in-flight window. Hostile acks —
    /// regressing, above the shipped window, unsolicited, or plain
    /// garbage — return a located [`TransportError::Protocol`] without
    /// touching `acked`.
    fn process_ack(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let line = std::str::from_utf8(payload)
            .map_err(|e| TransportError::Protocol(format!("ack is not UTF-8: {e}")))?;
        if let Some(detail) = line.strip_prefix("err ") {
            return Err(TransportError::Rejected(detail.to_string()));
        }
        let Some(rest) = line.strip_prefix("ok ") else {
            return Err(TransportError::Protocol(format!(
                "malformed ack line '{line}'"
            )));
        };
        let seq: u64 = rest
            .parse()
            .map_err(|_| TransportError::Protocol(format!("malformed ack sequence in '{line}'")))?;
        let now = self.tele.as_ref().map_or(0, |t| t.t.now_nanos());
        let conn = self.conn.as_mut().ok_or(TransportError::Closed)?;
        if let Some(acked) = conn.conn_acked {
            if seq <= acked {
                return Err(TransportError::Protocol(format!(
                    "regressing ack {seq} (cumulative ack already at {acked})"
                )));
            }
        }
        let Some(&(newest, _)) = conn.inflight.back() else {
            return Err(TransportError::Protocol(format!(
                "unsolicited ack {seq} with nothing in flight"
            )));
        };
        if seq > newest {
            return Err(TransportError::Protocol(format!(
                "ack {seq} is above the shipped window (newest in flight: {newest})"
            )));
        }
        let mut retired = 0u64;
        let mut matched = false;
        while let Some(&(s, t0)) = conn.inflight.front() {
            if s > seq {
                break;
            }
            conn.inflight.pop_front();
            retired += 1;
            matched = s == seq;
            if let Some(tele) = &self.tele {
                tele.ack_rtt_nanos.record(now.saturating_sub(t0));
            }
        }
        if !matched {
            return Err(TransportError::Protocol(format!(
                "ack {seq} matches no shipped frame"
            )));
        }
        conn.conn_acked = Some(seq);
        self.acked = Some(seq);
        if let Some(tele) = &self.tele {
            tele.acked_seq.set(seq);
            tele.ack_batch_size.record(retired);
            tele.window_inflight
                .set(self.conn.as_ref().map_or(0, |c| c.inflight.len()) as u64);
        }
        Ok(())
    }

    /// Retires every ack already on the wire without ever blocking.
    fn pump(&mut self) -> Result<(), TransportError> {
        loop {
            if self.in_flight() == 0 {
                return Ok(());
            }
            if let Some(payload) = self.take_buffered_ack()? {
                self.process_ack(&payload)?;
                continue;
            }
            let Some(conn) = self.conn.as_mut() else {
                return Ok(());
            };
            conn.reader
                .get_ref()
                .set_nonblocking(true)
                .map_err(TransportError::Io)?;
            let refill = conn.reader.fill_buf().map(|b| b.len());
            conn.reader
                .get_ref()
                .set_nonblocking(false)
                .map_err(TransportError::Io)?;
            match refill {
                Ok(0) => return Err(TransportError::Closed),
                Ok(_) => continue,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(())
                }
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
    }

    /// Blocks until one ack is processed, bounded by `deadline` (the
    /// caller's share of [`LinkConfig::drain_timeout`]). Ack framing
    /// state lives in the connection's staging buffer, so a timeout
    /// mid-frame strands nothing — the partial frame's bytes wait
    /// there for the rest.
    fn wait_ack(&mut self, deadline: Instant) -> Result<(), TransportError> {
        loop {
            if let Some(payload) = self.take_buffered_ack()? {
                return self.process_ack(&payload);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TransportError::DrainTimeout {
                    waited: self.config.drain_timeout,
                    in_flight: self.in_flight(),
                });
            }
            let per_read = self
                .config
                .read_timeout
                .min(deadline - now)
                .max(Duration::from_millis(1));
            let Some(conn) = self.conn.as_mut() else {
                return Err(TransportError::Closed);
            };
            conn.reader
                .get_ref()
                .set_read_timeout(Some(per_read))
                .map_err(TransportError::Io)?;
            match conn.reader.fill_buf() {
                Ok([]) => return Err(TransportError::Closed),
                Ok(_) => continue,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    continue
                }
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
    }

    fn drain_impl(&mut self) -> Result<Option<u64>, TransportError> {
        self.drain_to_impl(u64::MAX)
    }

    /// Waits until the cumulative ack reaches `seq` or the pipe is
    /// empty, whichever comes first, bounded by one drain timeout.
    fn drain_to_impl(&mut self, seq: u64) -> Result<Option<u64>, TransportError> {
        let deadline = Instant::now() + self.config.drain_timeout;
        while self.in_flight() > 0 && self.acked.is_none_or(|a| a < seq) {
            if let Err(e) = self.wait_ack(deadline) {
                return Err(self.fail(e));
            }
        }
        Ok(self.acked)
    }

    fn send_impl(&mut self, frame: &Frame, block: bool) -> Result<(), TransportError> {
        if self.conn.is_none() {
            self.redial().map_err(|e| {
                if let Some(tele) = &self.tele {
                    tele.send_errors.inc();
                }
                TransportError::Io(e)
            })?;
        }
        if matches!(frame.payload, Payload::Snapshot { .. }) {
            // A snapshot re-anchors the sequence numbering: drain the
            // old stream first and restart the cumulative-ack state
            // behind the barrier.
            if self.in_flight() > 0 {
                self.drain_impl()?;
            }
            if let Some(conn) = self.conn.as_mut() {
                conn.conn_acked = None;
            }
            self.acked = None;
        }
        if self.in_flight() >= self.window() {
            // The window looks full — retire anything already on the
            // wire before deciding to stall (or refuse).
            if let Err(e) = self.pump() {
                return Err(self.fail(e));
            }
        }
        if self.in_flight() >= self.window() {
            if !block {
                return Err(TransportError::WindowFull {
                    window: self.window(),
                });
            }
            if let Some(tele) = &self.tele {
                tele.backpressure_stalls.inc();
            }
            let deadline = Instant::now() + self.config.drain_timeout;
            while self.in_flight() >= self.window() {
                if let Err(e) = self.wait_ack(deadline) {
                    return Err(self.fail(e));
                }
            }
        }
        let text = frame.to_text();
        let t0 = self.tele.as_ref().map_or(0, |t| t.t.now_nanos());
        {
            // The redial above makes a live connection overwhelmingly
            // likely here, but the stall loop calls `wait_ack` → `fail`
            // paths that drop it — and a hostile ack stream must never
            // be able to abort the primary. Surface a typed error
            // instead of panicking on the invariant.
            let Some(conn) = self.conn.as_mut() else {
                return Err(self.fail(TransportError::Closed));
            };
            if let Err(e) =
                write_frame(&mut conn.writer, text.as_bytes()).and_then(|()| conn.writer.flush())
            {
                return Err(self.fail(TransportError::Io(e)));
            }
            conn.inflight.push_back((frame.seq, t0));
        }
        if let Some(tele) = &self.tele {
            tele.bytes_shipped.add(text.len() as u64);
            tele.window_inflight.set(self.in_flight() as u64);
            if let Some(tc) = frame.trace {
                tele.t
                    .point_in(tc, Severity::Debug, "ship", frame.seq, text.len() as u64);
            }
        }
        // Opportunistically retire any acks already on the wire. An
        // error here (rejection, protocol violation, dead peer) may
        // concern an *earlier* in-flight frame — pipelined errors
        // surface on whichever call touches the link next.
        if let Err(e) = self.pump() {
            return Err(self.fail(e));
        }
        Ok(())
    }
}

impl FrameSink for PrimaryLink {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.send_impl(frame, true)
    }

    fn drain(&mut self) -> Result<Option<u64>, TransportError> {
        self.drain_impl()
    }

    fn drain_to(&mut self, seq: u64) -> Result<Option<u64>, TransportError> {
        self.drain_to_impl(seq)
    }

    fn acked_seq(&self) -> Option<u64> {
        self.acked
    }

    fn in_flight(&self) -> usize {
        self.conn.as_ref().map_or(0, |c| c.inflight.len())
    }
}
