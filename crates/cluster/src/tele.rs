//! Replication instrument bundles: resolved-once handles into an
//! attached [`realloc_telemetry::Telemetry`] registry for the primary,
//! the replica, and each primary→replica link.
//!
//! Naming follows the workspace scheme (`cluster_*` for the streaming
//! side, `cluster_replica_*` for the applying side, `cluster_link_*`
//! with a `replica="host:port"` label per link):
//!
//! * **Primary** — `cluster_term` / `cluster_next_seq` gauges, one
//!   `cluster_frames_<kind>_total` counter per shipped payload kind
//!   (`events`, `epoch`, `check`, `snapshot`), and
//!   `cluster_checkpoint_nanos` / `cluster_bootstrap_nanos` durations
//!   for producing checkpoint and bootstrap frame sets.
//! * **Replica** — `cluster_replica_term` / `cluster_replica_last_seq` /
//!   `cluster_replica_events_applied` gauges (the poller computes
//!   replication lag as the primary's `cluster_next_seq − 1` minus the
//!   replica's `cluster_replica_last_seq`),
//!   `cluster_replica_frames_{applied,rejected}_total` and
//!   `cluster_replica_term_changes_total` counters, and
//!   `cluster_replica_{apply,digest_check,bootstrap}_nanos` histograms.
//! * **Link** — `cluster_link_bytes_shipped_total`,
//!   `cluster_link_ack_rtt_nanos`, `cluster_link_acked_seq`, and
//!   `cluster_link_send_errors_total`, and
//!   `cluster_link_reconnects_total`, each labeled with the replica's
//!   address so one registry can watch a whole fan-out.
//! * **Server** — `replica_handler_poisoned_total`: connections dropped
//!   because the shared replica's lock was poisoned (a handler thread
//!   panicked mid-apply); the server degrades instead of cascading the
//!   panic.

use realloc_telemetry::{labeled, Counter, Gauge, Histo, Telemetry};

/// Streaming-side instruments; held by [`crate::Primary`].
#[derive(Debug)]
pub(crate) struct PrimaryTele {
    /// The attached registry (clock + trace ring).
    pub t: Telemetry,
    pub term: Gauge,
    pub next_seq: Gauge,
    pub frames_events: Counter,
    pub frames_epoch: Counter,
    pub frames_check: Counter,
    pub frames_snapshot: Counter,
    pub checkpoint_nanos: Histo,
    pub bootstrap_nanos: Histo,
}

impl PrimaryTele {
    /// Resolves the primary's instruments; `None` for a disabled handle.
    pub fn build(t: &Telemetry) -> Option<Box<PrimaryTele>> {
        if !t.is_enabled() {
            return None;
        }
        Some(Box::new(PrimaryTele {
            term: t.gauge("cluster_term"),
            next_seq: t.gauge("cluster_next_seq"),
            frames_events: t.counter("cluster_frames_events_total"),
            frames_epoch: t.counter("cluster_frames_epoch_total"),
            frames_check: t.counter("cluster_frames_check_total"),
            frames_snapshot: t.counter("cluster_frames_snapshot_total"),
            checkpoint_nanos: t.histogram("cluster_checkpoint_nanos"),
            bootstrap_nanos: t.histogram("cluster_bootstrap_nanos"),
            t: t.clone(),
        }))
    }
}

/// Applying-side instruments; held by [`crate::Replica`].
#[derive(Debug)]
pub(crate) struct ReplicaTele {
    /// The attached registry — also re-attached to the replicated engine
    /// after every bootstrap snapshot restore.
    pub t: Telemetry,
    pub term: Gauge,
    pub last_seq: Gauge,
    pub events_applied: Gauge,
    pub frames_applied: Counter,
    pub frames_rejected: Counter,
    pub term_changes: Counter,
    pub apply_nanos: Histo,
    pub digest_check_nanos: Histo,
    pub bootstrap_nanos: Histo,
}

impl ReplicaTele {
    /// Resolves the replica's instruments; `None` for a disabled handle.
    pub fn build(t: &Telemetry) -> Option<Box<ReplicaTele>> {
        if !t.is_enabled() {
            return None;
        }
        Some(Box::new(ReplicaTele {
            term: t.gauge("cluster_replica_term"),
            last_seq: t.gauge("cluster_replica_last_seq"),
            events_applied: t.gauge("cluster_replica_events_applied"),
            frames_applied: t.counter("cluster_replica_frames_applied_total"),
            frames_rejected: t.counter("cluster_replica_frames_rejected_total"),
            term_changes: t.counter("cluster_replica_term_changes_total"),
            apply_nanos: t.histogram("cluster_replica_apply_nanos"),
            digest_check_nanos: t.histogram("cluster_replica_digest_check_nanos"),
            bootstrap_nanos: t.histogram("cluster_replica_bootstrap_nanos"),
            t: t.clone(),
        }))
    }
}

/// Per-link instruments, labeled with the replica's address; held by
/// [`crate::tcp::PrimaryLink`]. The pipelined link adds the in-flight
/// window depth (`cluster_link_window_inflight`), the cumulative ack
/// batch size (`cluster_ack_batch_size` — frames retired per ack),
/// window-exhaustion stalls (`cluster_link_backpressure_stalls_total`),
/// and bounded-drain expiries (`cluster_link_drain_timeouts_total`).
#[derive(Debug)]
pub(crate) struct LinkTele {
    /// The attached registry (for ack RTT clock reads).
    pub t: Telemetry,
    pub bytes_shipped: Counter,
    pub ack_rtt_nanos: Histo,
    pub acked_seq: Gauge,
    pub window_inflight: Gauge,
    pub ack_batch_size: Histo,
    pub backpressure_stalls: Counter,
    pub drain_timeouts: Counter,
    pub send_errors: Counter,
    pub reconnects: Counter,
}

impl LinkTele {
    /// Resolves one link's instruments under a `replica="addr"` label;
    /// `None` for a disabled handle.
    pub fn build(t: &Telemetry, addr: &str) -> Option<Box<LinkTele>> {
        if !t.is_enabled() {
            return None;
        }
        Some(Box::new(LinkTele {
            bytes_shipped: t.counter(labeled("cluster_link_bytes_shipped_total", "replica", addr)),
            ack_rtt_nanos: t.histogram(labeled("cluster_link_ack_rtt_nanos", "replica", addr)),
            acked_seq: t.gauge(labeled("cluster_link_acked_seq", "replica", addr)),
            window_inflight: t.gauge(labeled("cluster_link_window_inflight", "replica", addr)),
            ack_batch_size: t.histogram(labeled("cluster_ack_batch_size", "replica", addr)),
            backpressure_stalls: t.counter(labeled(
                "cluster_link_backpressure_stalls_total",
                "replica",
                addr,
            )),
            drain_timeouts: t.counter(labeled(
                "cluster_link_drain_timeouts_total",
                "replica",
                addr,
            )),
            send_errors: t.counter(labeled("cluster_link_send_errors_total", "replica", addr)),
            reconnects: t.counter(labeled("cluster_link_reconnects_total", "replica", addr)),
            t: t.clone(),
        }))
    }
}

/// Group-commit instruments; held by [`crate::ReplicationGroup`].
#[derive(Debug)]
pub(crate) struct GroupTele {
    pub committed_seq: Gauge,
    pub commits: Counter,
    pub commit_wait_nanos: Histo,
    pub quorum_failures: Counter,
    /// The attached registry (for commit wait clock reads).
    pub t: Telemetry,
}

impl GroupTele {
    /// Resolves the group's instruments; `None` for a disabled handle.
    pub fn build(t: &Telemetry) -> Option<Box<GroupTele>> {
        if !t.is_enabled() {
            return None;
        }
        Some(Box::new(GroupTele {
            committed_seq: t.gauge("cluster_group_committed_seq"),
            commits: t.counter("cluster_group_commits_total"),
            commit_wait_nanos: t.histogram("cluster_group_commit_wait_nanos"),
            quorum_failures: t.counter("cluster_group_quorum_failures_total"),
            t: t.clone(),
        }))
    }
}
