//! The replication replica: applies the primary's frame stream through
//! the engine's replay machinery, serves read-only queries, and can be
//! promoted to primary under a bumped fencing term.
//!
//! # Fencing
//!
//! A replica tracks the highest term it has seen. Frames whose term is
//! *behind* it are rejected ([`ApplyError::StaleTerm`]) — that is the
//! whole failover-safety argument: promotion bumps the term, replicas
//! adopt it on first contact, and the deposed primary's frames bounce
//! off everything from then on. Frames at a *higher* term are adopted
//! (a legitimately promoted peer took over).
//!
//! # Exactness
//!
//! Frames are applied through [`Engine::apply_recorded_batch`] /
//! [`Engine::apply_epoch_record`] — the same verified-replay path the
//! journal uses — so every recorded routing decision and outcome is
//! checked on the way in, and a replica that has applied the stream
//! through sequence `s` is **byte-identical** (snapshot text and
//! digest) to the primary as of `s`. Checkpoint markers re-verify that
//! continuously with an 8-byte digest, and cut a local journal
//! checkpoint so a replica's own crash recovery stays O(tail).

use crate::frame::{Frame, Payload};
use crate::primary::Primary;
use crate::tele::ReplicaTele;
use crate::ClusterError;
use realloc_core::{JobId, Window};
use realloc_engine::{Engine, Metrics, ReplayError};
use realloc_telemetry::{Severity, Telemetry};

/// Why a frame was not applied. Everything here is a graceful rejection
/// — the replica never panics on wire input and stays consistent (a
/// rejected frame changes nothing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApplyError {
    /// The frame's term is behind the replica's: a deposed primary.
    StaleTerm {
        /// Term the frame carried.
        frame: u64,
        /// Highest term the replica has seen.
        current: u64,
    },
    /// Sequence discontinuity: the stream lost or reordered frames. The
    /// replica needs `Primary::frames_since(expected - 1)` or a fresh
    /// bootstrap.
    SequenceGap {
        /// Sequence the replica expected next.
        expected: u64,
        /// Sequence the frame carried.
        got: u64,
    },
    /// A stream frame arrived before any bootstrap snapshot.
    NotBootstrapped,
    /// This replica was promoted (or retired); it no longer applies.
    Retired,
    /// The payload was structurally unusable (corrupt snapshot text,
    /// invalid epoch table, malformed batch).
    Corrupt(String),
    /// Applying the payload produced a different outcome than the
    /// primary recorded — replica and primary have diverged.
    Diverged(String),
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::StaleTerm { frame, current } => write!(
                f,
                "fenced: frame term {frame} is behind the current term {current}"
            ),
            ApplyError::SequenceGap { expected, got } => {
                write!(f, "sequence gap: expected frame {expected}, got {got}")
            }
            ApplyError::NotBootstrapped => {
                write!(f, "stream frame before any bootstrap snapshot")
            }
            ApplyError::Retired => write!(f, "replica was promoted/retired"),
            ApplyError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
            ApplyError::Diverged(m) => write!(f, "replica diverged from primary: {m}"),
        }
    }
}

impl std::error::Error for ApplyError {}

impl From<ReplayError> for ApplyError {
    fn from(e: ReplayError) -> Self {
        match e {
            ReplayError::Corrupt(p) => ApplyError::Corrupt(p.to_string()),
            ReplayError::Divergence(d) => ApplyError::Diverged(d.to_string()),
        }
    }
}

/// The applying side of a replicated engine; see the module docs.
#[derive(Debug, Default)]
pub struct Replica {
    /// `None` until the bootstrap snapshot lands (or after promotion).
    engine: Option<Engine>,
    /// Highest term seen (0: none yet).
    term: u64,
    /// Seq of the last applied frame.
    last_seq: u64,
    /// Events applied since genesis (mirrors the primary's count).
    events_applied: u64,
    /// Promotion/retirement latch.
    retired: bool,
    /// Applying-side instruments ([`Replica::attach_telemetry`]).
    tele: Option<Box<ReplicaTele>>,
}

impl Replica {
    /// An empty replica awaiting its bootstrap snapshot.
    pub fn new() -> Replica {
        Replica::default()
    }

    /// Attaches a telemetry registry: per-frame apply timing and
    /// applied/rejected counters, fencing-term gauges and change counts,
    /// digest-check and bootstrap durations — and, once a bootstrap
    /// snapshot restores an engine, that engine gets the registry too
    /// ([`Engine::attach_telemetry`], re-applied after every bootstrap).
    /// A disabled handle detaches.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele = ReplicaTele::build(telemetry);
        if let Some(engine) = self.engine.as_mut() {
            engine.attach_telemetry(telemetry);
        }
        if let Some(tele) = &self.tele {
            tele.term.set(self.term);
            tele.last_seq.set(self.last_seq);
            tele.events_applied.set(self.events_applied);
        }
    }

    /// Applies one frame. On error the replicated *state* is unchanged,
    /// with two deliberate exceptions: a higher **term** is adopted even
    /// from a rejected frame (observing a newer primary must fence the
    /// deposed one immediately), and after [`ApplyError::Diverged`] the
    /// replica must be re-bootstrapped — a half-applied divergent batch
    /// is not rolled back.
    pub fn apply(&mut self, frame: &Frame) -> Result<(), ApplyError> {
        // Take the instruments out so the apply body can borrow `self`;
        // the uninstrumented path is a single Option check.
        let Some(tele) = self.tele.take() else {
            return self.apply_inner(frame);
        };
        let t0 = tele.t.now_nanos();
        let prev_term = self.term;
        let result = self.apply_inner(frame);
        let took = tele.t.now_nanos().saturating_sub(t0);
        tele.apply_nanos.record(took);
        match (&frame.payload, &result) {
            (Payload::Check { .. }, Ok(())) => tele.digest_check_nanos.record(took),
            (Payload::Snapshot { .. }, Ok(())) => {
                tele.bootstrap_nanos.record(took);
                // The restored engine is brand new — instrument it.
                if let Some(engine) = self.engine.as_mut() {
                    engine.attach_telemetry(&tele.t);
                }
            }
            _ => {}
        }
        match &result {
            Ok(()) => {
                tele.frames_applied.inc();
                // The frame's out-of-band annotation joins this apply to
                // the originating request's trace: same id here as in
                // the primary's receipt/flush/fsync/ship events.
                if let Some(tc) = frame.trace {
                    tele.t
                        .point_in(tc, Severity::Debug, "apply", frame.seq, took);
                }
            }
            Err(e) => {
                tele.frames_rejected.inc();
                tele.t
                    .point(Severity::Warn, "frame_rejected", frame.term, frame.seq);
                // Divergence is the one non-recoverable rejection.
                if matches!(e, ApplyError::Diverged(_)) {
                    tele.t
                        .point(Severity::Warn, "diverged", frame.term, frame.seq);
                }
            }
        }
        if self.term != prev_term {
            tele.term_changes.inc();
            tele.t
                .point(Severity::Info, "term_adopted", self.term, frame.seq);
        }
        tele.term.set(self.term);
        tele.last_seq.set(self.last_seq);
        tele.events_applied.set(self.events_applied);
        self.tele = Some(tele);
        result
    }

    fn apply_inner(&mut self, frame: &Frame) -> Result<(), ApplyError> {
        if self.retired {
            return Err(ApplyError::Retired);
        }
        if frame.term < self.term {
            return Err(ApplyError::StaleTerm {
                frame: frame.term,
                current: self.term,
            });
        }
        // Adopt a higher term the moment it is OBSERVED, even when the
        // frame itself is then rejected (sequence gap, corrupt payload):
        // hearing from a newer primary must fence the deposed one
        // immediately, or a lagging replica stuck behind a gap would
        // keep accepting the dead lineage's contiguous frames —
        // split-brain reads. (Same rule as Raft's term adoption.)
        self.term = frame.term;
        match &frame.payload {
            Payload::Snapshot {
                events_applied,
                text,
            } => {
                // A snapshot re-anchors the stream wholesale; no seq
                // continuity to check (its seq IS the new position).
                let engine = Engine::restore_snapshot(text)
                    .map_err(|e| ApplyError::Corrupt(e.to_string()))?;
                if engine.journal().is_none() {
                    return Err(ApplyError::Corrupt(
                        "bootstrap snapshot has journaling disabled; replicas must journal"
                            .to_string(),
                    ));
                }
                self.engine = Some(engine);
                self.last_seq = frame.seq;
                self.events_applied = *events_applied;
                Ok(())
            }
            payload => {
                let Some(engine) = self.engine.as_mut() else {
                    return Err(ApplyError::NotBootstrapped);
                };
                let expected = self.last_seq + 1;
                if frame.seq != expected {
                    return Err(ApplyError::SequenceGap {
                        expected,
                        got: frame.seq,
                    });
                }
                match payload {
                    Payload::Events(events) => {
                        engine.apply_recorded_batch(events)?;
                        self.events_applied += events.len() as u64;
                    }
                    Payload::Epoch(rec) => engine.apply_epoch_record(rec)?,
                    Payload::Check {
                        events_applied,
                        digest,
                    } => {
                        if *events_applied != self.events_applied {
                            return Err(ApplyError::Diverged(format!(
                                "checkpoint marker covers {events_applied} events but the \
                                 replica applied {}",
                                self.events_applied
                            )));
                        }
                        let local = engine.state_digest();
                        if local != *digest {
                            return Err(ApplyError::Diverged(format!(
                                "state digest mismatch at seq {}: primary {digest:#x}, \
                                 replica {local:#x}",
                                frame.seq
                            )));
                        }
                        // Verified checkpoint: cut a local one so this
                        // replica's own crash recovery is O(tail) too.
                        engine.checkpoint();
                    }
                    Payload::Snapshot { .. } => unreachable!("matched above"),
                }
                self.last_seq = frame.seq;
                Ok(())
            }
        }
    }

    /// Promotes this replica to primary under a bumped fencing term,
    /// resuming the stream where the old primary's left off. The replica
    /// itself is retired: further [`Replica::apply`] calls — including
    /// late frames from the deposed primary — are rejected.
    pub fn promote(&mut self) -> Result<Primary, ClusterError> {
        if self.retired {
            return Err(ClusterError::Retired);
        }
        let engine = self.engine.take().ok_or(ClusterError::NotBootstrapped)?;
        self.retired = true;
        Ok(Primary::resume(engine, self.term + 1, self.last_seq + 1))
    }

    /// Whether the bootstrap snapshot has been applied.
    pub fn is_bootstrapped(&self) -> bool {
        self.engine.is_some()
    }

    /// Highest fencing term seen.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Sequence of the last applied frame.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Events applied since genesis.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// The replicated engine, once bootstrapped (full read access).
    pub fn engine(&self) -> Option<&Engine> {
        self.engine.as_ref()
    }

    // ------------------------------------------------------------------
    // Read scaling: the query surface a replica serves.
    // ------------------------------------------------------------------

    /// Original window of an active job (read-only routing lookup).
    pub fn window_of(&self, id: JobId) -> Option<Window> {
        self.engine.as_ref()?.window_of(id)
    }

    /// Point-in-time telemetry snapshot, when bootstrapped.
    pub fn metrics(&self) -> Option<Metrics> {
        self.engine.as_ref().map(|e| e.metrics())
    }

    /// Jobs currently scheduled.
    pub fn active_count(&self) -> usize {
        self.engine.as_ref().map_or(0, |e| e.active_count())
    }

    /// Full engine invariant check ([`Engine::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        match &self.engine {
            Some(e) => e.validate(),
            None => Err("replica not bootstrapped".to_string()),
        }
    }

    /// Stable digest of the replicated state ([`Engine::state_digest`]);
    /// `None` until bootstrapped.
    pub fn state_digest(&self) -> Option<u64> {
        self.engine.as_ref().map(|e| e.state_digest())
    }
}
