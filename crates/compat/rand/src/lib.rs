//! Offline drop-in shim for the subset of the `rand` crate API this
//! workspace uses (the build environment has no crates.io access, so the
//! real crate cannot be vendored).
//!
//! Implemented surface: [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer `Range`/`RangeInclusive`,
//! [`Rng::gen_bool`], and [`seq::SliceRandom`] (`shuffle`/`choose`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid for test workloads, deterministic per seed, and **not** a
//! reproduction of the real `StdRng` stream (callers only rely on
//! determinism, never on specific values).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can instantiate themselves from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range of values samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, width + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(reject_sample(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reject_sample(rng, width + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Uniform value in `[0, width)` by rejection sampling (no modulo bias).
fn reject_sample(rng: &mut dyn RngCore, width: u64) -> u64 {
    debug_assert!(width > 0);
    let zone = u64::MAX - (u64::MAX % width);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % width;
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256**; see crate docs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
