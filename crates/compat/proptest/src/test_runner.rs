//! Test configuration, the deterministic RNG, and failure reporting.

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of randomized cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Derives the per-test base seed: FNV-1a of the test name, overridable
/// via the `PROPTEST_SEED` environment variable (for reproducing CI
/// failures locally).
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The deterministic generator handed to strategies (xoshiro256**).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case number `case` of a test with base seed `seed`.
    pub fn for_case(seed: u64, case: u32) -> Self {
        let mut x = seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, width)` (rejection sampled, no modulo bias).
    pub fn below(&mut self, width: u64) -> u64 {
        assert!(width > 0, "below(0)");
        let zone = u64::MAX - (u64::MAX % width);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % width;
            }
        }
    }
}

/// Prints reproduction info when a case panics (armed on construction,
/// disarmed by [`CaseGuard::passed`]; the report fires from `Drop` during
/// the assert's unwind).
pub struct CaseGuard {
    test: &'static str,
    seed: u64,
    case: u32,
    armed: bool,
}

impl CaseGuard {
    /// Arms the guard for one case.
    pub fn new(test: &'static str, seed: u64, case: u32) -> Self {
        CaseGuard {
            test,
            seed,
            case,
            armed: true,
        }
    }

    /// Marks the case as passed (no report on drop).
    pub fn passed(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: test '{}' failed at case {} (base seed {}); \
                 rerun with PROPTEST_SEED={} to reproduce",
                self.test, self.case, self.seed, self.seed
            );
        }
    }
}

/// Error type kept for API familiarity (the shim reports via panics).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
