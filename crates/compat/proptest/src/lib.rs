//! Offline drop-in shim for the subset of the `proptest` crate API this
//! workspace uses (the build environment has no crates.io access).
//!
//! Implemented surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` inner attribute), [`strategy::Strategy`] with
//! `prop_map`, integer-range and tuple strategies, `any::<T>()` for
//! primitives, `prop::collection::vec`, [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Semantics: each test runs `cases` randomized executions from a
//! deterministic per-test seed (derived from the test name, overridable
//! via the `PROPTEST_SEED` environment variable). There is **no
//! shrinking** — on failure the assert's own panic message plus the
//! reported case seed reproduce the input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The `proptest!` doc example necessarily shows `#[test]` inside a
// doctest — that is the macro's real calling convention.
#![allow(clippy::test_attr_in_doctest)]

pub mod strategy;
pub mod test_runner;

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Collection strategies at the crate root (proptest exposes both paths).
pub mod collection {
    pub use crate::strategy::vec;
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines randomized property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::base_seed(stringify!($name));
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(seed, case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let case_guard = $crate::test_runner::CaseGuard::new(
                        stringify!($name), seed, case,
                    );
                    $body
                    case_guard.passed();
                }
            }
        )*
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted union of strategies producing the same value type.
///
/// ```
/// use proptest::prelude::*;
/// let s = prop_oneof![
///     3 => (0u64..10).prop_map(|v| v as i64),
///     1 => (0u64..10).prop_map(|v| -(v as i64)),
/// ];
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 5u64..100, b in 0usize..=7) {
            prop_assert!((5..100).contains(&a));
            prop_assert!(b <= 7);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec((0u32..4, any::<bool>()), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for (x, _) in v {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            2 => (0u64..50).prop_map(|x| x as i64),
            1 => (0u64..50).prop_map(|x| -(x as i64) - 1),
        ]) {
            prop_assert!((-50..50).contains(&v));
        }
    }

    #[test]
    fn wide_signed_ranges_do_not_overflow() {
        let seed = crate::test_runner::base_seed("wide");
        let mut rng = crate::test_runner::TestRng::for_case(seed, 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(i64::MIN..i64::MAX), &mut rng);
            assert!(v < i64::MAX);
            let w = Strategy::generate(&(i32::MIN..=i32::MAX), &mut rng);
            let _ = w;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let seed = crate::test_runner::base_seed("fixed");
        let gen = |case| {
            let mut rng = crate::test_runner::TestRng::for_case(seed, case);
            Strategy::generate(&(0u64..1_000_000), &mut rng)
        };
        for case in 0..10 {
            assert_eq!(gen(case), gen(case));
        }
    }
}
