//! Value-generation strategies (no shrinking; see crate docs).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(width + 1) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // Widen through i128: the difference of two signed values
                // can exceed the signed type's own domain.
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(width + 1) as $t)
            }
        }
    )*};
}

impl_signed_int_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Strategy over a whole type's domain.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// `prop::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// Strategy for vectors with lengths drawn from a range.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Weighted union of same-valued strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping is exhaustive")
    }
}
