//! Offline drop-in shim for the subset of the `criterion` crate API this
//! workspace uses (the build environment has no crates.io access).
//!
//! Implements [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Throughput`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark is warmed up, an iteration
//! count is calibrated so one sample lasts ≈`SAMPLE_TARGET_MS`, and
//! `sample_size` samples are collected; mean/median/min ns per iteration
//! are printed and appended to `BENCH_<group>.json` under
//! `$BENCH_OUT_DIR` (default `target/shim-bench/`) to seed the repo's
//! perf trajectory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

const SAMPLE_TARGET_MS: u64 = 20;
const WARMUP_MS: u64 = 50;

/// `BENCH_SMOKE=1` shrinks warmup/sample budgets to a few milliseconds
/// and caps samples at 2 — a CI-friendly "does every bench still run"
/// mode (numbers are meaningless; the JSON is still written). This is
/// the shim's equivalent of real criterion's `--test` quick mode.
fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn sample_target_ms() -> u64 {
    if smoke() {
        2
    } else {
        SAMPLE_TARGET_MS
    }
}

fn warmup_ms() -> u64 {
    if smoke() {
        2
    } else {
        WARMUP_MS
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            results: Vec::new(),
        }
    }
}

/// Declared per-iteration work, used to derive throughput rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// Id that is just a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

struct BenchResult {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    iters_per_sample: u64,
    samples: usize,
    throughput_per_sec: Option<f64>,
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    results: Vec<BenchResult>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let samples = if smoke() {
            2
        } else {
            self.criterion.sample_size
        };
        let mut b = Bencher::calibrating();
        f(&mut b); // warmup + calibration pass
        let iters = b.calibrated_iters();
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher::measuring(iters);
            f(&mut b);
            times.push(b.elapsed_ns() / iters as f64);
        }
        times.sort_by(|a, c| a.partial_cmp(c).expect("timings are finite"));
        let mean_ns = times.iter().sum::<f64>() / times.len() as f64;
        let median_ns = times[times.len() / 2];
        let min_ns = times[0];
        let throughput_per_sec = self.throughput.map(|t| {
            let per_iter = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
            };
            per_iter * 1e9 / median_ns
        });
        let thrpt = throughput_per_sec
            .map(|r| format!("  thrpt: {:>12.0} elem/s", r))
            .unwrap_or_default();
        println!(
            "bench {:<40} time: [{:>10.1} ns/iter median, {:>10.1} mean]{}",
            format!("{}/{}", self.name, id.id),
            median_ns,
            mean_ns,
            thrpt
        );
        self.results.push(BenchResult {
            id: id.id,
            mean_ns,
            median_ns,
            min_ns,
            iters_per_sample: iters,
            samples,
            throughput_per_sec,
        });
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Writes the group's `BENCH_<group>.json` and ends the group.
    pub fn finish(self) {
        let dir =
            std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| "target/shim-bench".to_string());
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let sanitized: String = self
            .name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = format!("{dir}/BENCH_{sanitized}.json");
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"group\": \"{}\",\n", self.name));
        json.push_str("  \"unit\": \"ns_per_iter\",\n  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            let thrpt = r
                .throughput_per_sec
                .map(|t| format!(", \"throughput_per_sec\": {t:.1}"))
                .unwrap_or_default();
            json.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"iters_per_sample\": {}, \"samples\": {}{}}}{}\n",
                r.id, r.median_ns, r.mean_ns, r.min_ns, r.iters_per_sample, r.samples, thrpt, sep
            ));
        }
        json.push_str("  ]\n}\n");
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(json.as_bytes());
        }
    }
}

enum BenchMode {
    /// Warmup: run for `WARMUP_MS`, record the per-iteration estimate.
    Calibrating { est_ns: f64 },
    /// Timed run of a fixed iteration count.
    Measuring { iters: u64, elapsed: Duration },
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    mode: BenchMode,
}

impl Bencher {
    fn calibrating() -> Self {
        Bencher {
            mode: BenchMode::Calibrating { est_ns: 1.0 },
        }
    }

    fn measuring(iters: u64) -> Self {
        Bencher {
            mode: BenchMode::Measuring {
                iters,
                elapsed: Duration::ZERO,
            },
        }
    }

    /// Times `payload`, discarding its output.
    pub fn iter<O>(&mut self, mut payload: impl FnMut() -> O) {
        match &mut self.mode {
            BenchMode::Calibrating { est_ns } => {
                let budget = Duration::from_millis(warmup_ms());
                let start = Instant::now();
                let mut runs = 0u64;
                while start.elapsed() < budget {
                    std::hint::black_box(payload());
                    runs += 1;
                }
                *est_ns = start.elapsed().as_nanos() as f64 / runs as f64;
            }
            BenchMode::Measuring { iters, elapsed } => {
                let start = Instant::now();
                for _ in 0..*iters {
                    std::hint::black_box(payload());
                }
                *elapsed = start.elapsed();
            }
        }
    }

    fn calibrated_iters(&self) -> u64 {
        match &self.mode {
            BenchMode::Calibrating { est_ns } => {
                let target_ns = (sample_target_ms() * 1_000_000) as f64;
                (target_ns / est_ns.max(1.0)).clamp(1.0, 1e9) as u64
            }
            BenchMode::Measuring { .. } => unreachable!("calibration mode only"),
        }
    }

    fn elapsed_ns(&self) -> f64 {
        match &self.mode {
            BenchMode::Measuring { elapsed, .. } => elapsed.as_nanos() as f64,
            BenchMode::Calibrating { .. } => unreachable!("measuring mode only"),
        }
    }
}

/// Bundles benchmark functions into one named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_and_measurement_run() {
        std::env::set_var("BENCH_OUT_DIR", "target/shim-bench-test");
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        assert_eq!(group.results.len(), 1);
        assert!(group.results[0].median_ns > 0.0);
        group.finish();
        let written = std::fs::read_to_string("target/shim-bench-test/BENCH_shim_smoke.json")
            .expect("json written");
        assert!(written.contains("\"group\": \"shim_smoke\""));
        assert!(written.contains("throughput_per_sec"));
    }
}
