//! Offline shim for an FxHash-style fast hasher (the `rustc-hash` /
//! `fxhash` idiom: multiply–xor–rotate over word-sized chunks), for the
//! hash maps on the scheduling hot path.
//!
//! `std`'s default `SipHash` is DoS-resistant but costs tens of
//! nanoseconds per lookup; the scheduler's keys are small integers and
//! windows (`u64`-shaped), hashed millions of times per second on the
//! ingest path, and none of the keyed maps are exposed to attacker-chosen
//! keys (job ids are tenant-namespaced upstream). FxHash trades the DoS
//! resistance we don't need for a few-cycle hash.
//!
//! A welcome side effect: unlike `std`'s per-instance `RandomState`,
//! [`FxBuildHasher`] is deterministic, so iteration order of an
//! [`FxHashMap`] depends only on the insertion history — two engines fed
//! the same stream behave identically, which the journal-replay and
//! parallel-vs-sequential equivalence guarantees rely on wherever an
//! iteration order can leak into a decision.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hash::{BuildHasherDefault, Hasher};

/// The Firefox/rustc multiplier constant (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher.
///
/// Each word of input is folded in as
/// `hash = (hash.rotate_left(5) ^ word) * SEED`; sub-word tails are
/// zero-extended. Not DoS-resistant — use only where keys are trusted.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut buf = [0u8; 8];
            buf[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so maps that use only the low/high bits still
        // see every input bit (the bare Fx state is weak in its low bits
        // for sequential integer keys).
        let h = self.hash;
        h.rotate_left(26) ^ h.rotate_left(53) ^ h
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`] — deterministic (no
/// per-instance random state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        for v in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            assert_eq!(hash_of(&v), hash_of(&v));
            let other = FxBuildHasher::default().hash_one(v);
            assert_eq!(hash_of(&v), other, "builders must agree");
        }
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Sequential u64 keys (job ids, slots) must spread; collisions on
        // the full 64-bit output would signal a broken mix.
        let hashes: std::collections::HashSet<u64> = (0u64..10_000).map(|v| hash_of(&v)).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_tail_handling() {
        // Same logical bytes, different write granularity ⇒ same digest
        // is NOT required by the Hasher contract, but each must be
        // self-consistent and tail bytes must affect the result.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fx_map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(7 + (1 << 32), "big");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<(u64, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn low_bits_spread_for_sequential_keys() {
        // HashMap uses the low bits for bucket selection; sequential ids
        // must not all land in a handful of buckets.
        let mut buckets = std::collections::HashSet::new();
        for v in 0u64..256 {
            buckets.insert(hash_of(&v) & 127);
        }
        assert!(buckets.len() > 100, "only {} of 128 buckets", buckets.len());
    }
}
